"""Scenario family generators: compact study descriptions -> lazy streams.

Each generator expands a few parameters into the N scenarios a study
needs, with deterministic naming and tagging.  Families are emitted as
:class:`~repro.scenarios.stream.ScenarioStream` — re-iterable lazy
iterables with a known length where one exists — so a 10k-draw ensemble
never materialises as a list unless a caller explicitly asks
(``stream.materialize()``).  Stochastic families derive one child seed
per scenario *index* from the family seed (:func:`~repro.scenarios
.stream.child_seed`), so the ensemble is reproducible and independent of
execution order (serial, chunked, process-parallel, or streamed).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator

import numpy as np

from ..grid.network import Network
from .spec import (
    BranchOutage,
    GaussianLoadNoise,
    Scenario,
    UniformLoadScale,
    ZonalLoadScale,
)
from .stream import ScenarioStream, as_stream, child_seed, stream_length


def load_sweep(lo: float = 0.8, hi: float = 1.2, steps: int = 9) -> ScenarioStream:
    """Uniform load scaling swept over ``steps`` points in [lo, hi]."""
    if steps < 2:
        raise ValueError(f"a sweep needs at least 2 steps, got {steps}")
    if lo < 0 or hi < lo:
        raise ValueError(f"invalid sweep range [{lo}, {hi}]")

    def gen() -> Iterator[Scenario]:
        for i, f in enumerate(np.linspace(lo, hi, steps)):
            yield Scenario(
                name=f"sweep_{int(round(f * 100)):03d}",
                perturbations=(UniformLoadScale(float(f)),),
                tags={"family": "sweep", "scale": float(f), "index": i},
            )

    return ScenarioStream(gen, length=steps, family="sweep")


def uniform_correlation(n_zones: int, rho: float) -> list[list[float]]:
    """Equicorrelation matrix: ``rho`` between every zone pair, 1 on the
    diagonal.  PSD for ``-1/(Z-1) <= rho <= 1`` (validated downstream by
    :func:`correlation_transform`)."""
    if n_zones < 1:
        raise ValueError(f"need at least one zone, got {n_zones}")
    return [
        [1.0 if i == j else float(rho) for j in range(n_zones)]
        for i in range(n_zones)
    ]


def correlation_transform(correlation) -> np.ndarray:
    """Validate a zonal load correlation matrix and return its transform.

    Checks square shape, a unit diagonal, symmetry, and positive
    semi-definiteness, then returns the matrix ``L`` (Cholesky-style,
    eigen-based so exactly-singular PSD matrices work too) with
    ``L @ L.T == correlation`` — correlated zone draws are ``L @ z`` for
    i.i.d. standard normals ``z``.
    """
    corr = np.asarray(correlation, dtype=float)
    if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
        raise ValueError(
            f"correlation must be a square matrix, got shape {corr.shape}"
        )
    if not np.allclose(np.diag(corr), 1.0, atol=1e-8):
        raise ValueError("correlation matrix must have a unit diagonal")
    if not np.allclose(corr, corr.T, atol=1e-8):
        raise ValueError("correlation matrix must be symmetric")
    eigvals, eigvecs = np.linalg.eigh(corr)
    if eigvals.min() < -1e-8 * max(1.0, float(eigvals.max())):
        raise ValueError(
            "correlation matrix must be positive semi-definite "
            f"(min eigenvalue {eigvals.min():.3g})"
        )
    return eigvecs * np.sqrt(np.clip(eigvals, 0.0, None))


def monte_carlo_ensemble(
    n: int = 200,
    sigma: float = 0.05,
    seed: int = 0,
    correlation=None,
) -> ScenarioStream:
    """``n`` independent Gaussian load draws around the base point.

    Child seeds are hash-derived per draw index, so draw ``i`` realises
    the same network whether the ensemble has 10 or 10 000 members and
    wherever in the stream it is consumed.

    ``correlation`` (optional) switches to *zonal correlated* draws: a
    ``Z x Z`` load correlation matrix (validated PSD) is Cholesky-
    transformed so each scenario draws one factor per zone, correlated
    across zones, applied through :class:`~repro.scenarios.spec
    .ZonalLoadScale` (buses partitioned into ``Z`` contiguous bands).
    Scenarios are tagged with ``n_zones`` and ``hot_zone`` — the zone
    with the largest realised factor — so sliced aggregation can answer
    "how do violations split by the zone driving the stress".
    """
    if n < 1:
        raise ValueError(f"ensemble size must be >= 1, got {n}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    width = max(3, len(str(n - 1)))

    if correlation is None:

        def gen() -> Iterator[Scenario]:
            for i in range(n):
                cseed = child_seed(seed, i)
                yield Scenario(
                    name=f"mc_{i:0{width}d}",
                    perturbations=(GaussianLoadNoise(float(sigma), cseed),),
                    tags={"family": "monte_carlo", "draw": i, "seed": cseed, "index": i},
                )

        return ScenarioStream(gen, length=n, family="monte_carlo")

    transform = correlation_transform(correlation)
    n_zones = transform.shape[0]

    def gen_correlated() -> Iterator[Scenario]:
        for i in range(n):
            cseed = child_seed(seed, i)
            rng = np.random.default_rng(cseed)
            draw = transform @ rng.standard_normal(n_zones)
            factors = np.maximum(0.0, 1.0 + sigma * draw)
            yield Scenario(
                name=f"mc_{i:0{width}d}",
                perturbations=(
                    ZonalLoadScale(tuple(float(f) for f in factors)),
                ),
                tags={
                    "family": "monte_carlo",
                    "draw": i,
                    "seed": cseed,
                    "index": i,
                    "n_zones": n_zones,
                    "hot_zone": int(np.argmax(factors)),
                },
            )

    return ScenarioStream(gen_correlated, length=n, family="monte_carlo")


def latin_hypercube(
    n: int = 100, lo: float = 0.8, hi: float = 1.2, seed: int = 0
) -> ScenarioStream:
    """Latin-hypercube load sampling: one draw per stratum of [lo, hi].

    Divides the scale range into ``n`` equal strata, draws one uniform
    sample inside each, and shuffles the stratum order — space-filling
    coverage a plain Monte Carlo ensemble only approaches at much larger
    N.  Deterministic in ``seed``; emitted lazily with ``family``/
    ``index`` tags like every other family.
    """
    if n < 1:
        raise ValueError(f"sample count must be >= 1, got {n}")
    if lo < 0 or hi < lo:
        raise ValueError(f"invalid sampling range [{lo}, {hi}]")
    width = max(3, len(str(n - 1)))

    def gen() -> Iterator[Scenario]:
        # One small vectorised draw up front (2n floats), scenarios lazy.
        rng = np.random.default_rng(seed)
        strata = rng.permutation(n)
        offsets = rng.random(n)
        span = hi - lo
        for i in range(n):
            factor = lo + span * (float(strata[i]) + float(offsets[i])) / n
            yield Scenario(
                name=f"lhs_{i:0{width}d}",
                perturbations=(UniformLoadScale(round(factor, 9)),),
                tags={
                    "family": "lhs",
                    "index": i,
                    "scale": factor,
                    "stratum": int(strata[i]),
                },
            )

    return ScenarioStream(gen, length=n, family="lhs")


def outage_combinations(
    net: Network,
    *,
    depth: int = 2,
    limit: int | None = None,
    branch_ids: list[int] | None = None,
) -> ScenarioStream:
    """N-k outage scenarios: every ``depth``-element combination of branches.

    The combination count explodes quickly (118-bus N-2 is ~15k pairs), so
    ``limit`` caps the expansion; combinations are enumerated in a fixed
    lexicographic order, so a capped study is a deterministic prefix —
    and the stream never holds more than one combination at a time.
    """
    if depth < 1:
        raise ValueError(f"outage depth must be >= 1, got {depth}")
    candidates = branch_ids if branch_ids is not None else net.in_service_branch_ids()
    total = math.comb(len(candidates), depth)
    if limit is not None:
        total = min(total, limit)

    def gen() -> Iterator[Scenario]:
        combos = itertools.combinations(candidates, depth)
        for i, combo in enumerate(itertools.islice(combos, total)):
            yield Scenario(
                name="out_" + "_".join(str(b) for b in combo),
                perturbations=tuple(BranchOutage(b) for b in combo),
                tags={"family": "outage", "branches": list(combo), "index": i},
            )

    return ScenarioStream(gen, length=total, family="outage")


def daily_profile(
    steps: int = 24, trough: float = 0.65, peak: float = 1.0
) -> ScenarioStream:
    """A daily load curve: cosine shape with a 4 am trough and 4 pm peak.

    ``steps`` samples one day uniformly (24 -> hourly); each step scales
    all loads by a factor in [trough, peak].  Each scenario carries an
    integer ``hour_of_day`` tag (0..23) alongside the exact fractional
    ``hour``, so sub-hourly profiles still slice into 24 hourly buckets.
    """
    if steps < 1:
        raise ValueError(f"profile needs at least 1 step, got {steps}")
    if trough < 0 or peak < trough:
        raise ValueError(f"invalid profile band [{trough}, {peak}]")

    def gen() -> Iterator[Scenario]:
        for i in range(steps):
            hour = 24.0 * i / steps
            shape = 0.5 * (1.0 - math.cos(2.0 * math.pi * (hour - 4.0) / 24.0))
            factor = trough + (peak - trough) * shape
            yield Scenario(
                name=f"hour_{hour:04.1f}".replace(".", "h"),
                perturbations=(UniformLoadScale(round(factor, 6)),),
                tags={
                    "family": "profile",
                    "hour": hour,
                    "hour_of_day": int(hour) % 24,
                    "scale": factor,
                    "index": i,
                },
            )

    return ScenarioStream(gen, length=steps, family="profile")


def with_branch_outage(
    scenarios: Iterable[Scenario], branch_id: int
) -> ScenarioStream:
    """Cross an existing family with a fixed branch outage (study composition)."""
    source = as_stream(scenarios)

    def gen() -> Iterator[Scenario]:
        for s in source:
            yield Scenario(
                name=f"{s.name}_out{branch_id}",
                perturbations=(*s.perturbations, BranchOutage(branch_id)),
                tags={**s.tags, "outage_branch": branch_id},
            )

    return ScenarioStream(gen, length=source.length, family=source.family)


#: Families :func:`expand_study_kind` can build from a flat request.
STUDY_FAMILY_KINDS = ("sweep", "monte_carlo", "lhs", "outage", "profile")

#: Natural bounded-cardinality slice dimension per family tag schema.
#: Families without one (Monte Carlo draws, LHS strata, outage pairs are
#: all per-scenario-distinct) infer no slicing; correlated Monte Carlo
#: ensembles carry a ``hot_zone`` tag that must be requested explicitly.
FAMILY_SLICE_TAGS: dict[str, tuple[str, ...]] = {
    "sweep": ("scale",),
    "load_sweep": ("scale",),
    "profile": ("hour_of_day",),
    "daily_profile": ("hour_of_day",),
}

#: Conversational aliases -> canonical scenario-tag names.
SLICE_TAG_ALIASES: dict[str, str] = {
    "hour": "hour_of_day",
    "hour-of-day": "hour_of_day",
    "hour of day": "hour_of_day",
    "zone": "hot_zone",
    "hot zone": "hot_zone",
    "load level": "scale",
    "load-level": "scale",
    "level": "scale",
    "factor": "scale",
}


def default_slice_by(kind: str, *, n_zones: int = 0) -> tuple[str, ...]:
    """The slice dimensions a study family implies (possibly none).

    A Monte Carlo family with zonal correlated draws (``n_zones >= 2``)
    naturally slices by the stress-driving ``hot_zone`` tag; this is the
    one place that rule lives for every front end.
    """
    kind = kind.replace("-", "_")
    inferred = FAMILY_SLICE_TAGS.get(kind, ())
    if not inferred and kind == "monte_carlo" and n_zones >= 2:
        return ("hot_zone",)
    return inferred


def resolve_slice_by(spec, kind: str = "", *, n_zones: int = 0) -> tuple[str, ...]:
    """Normalise any front end's slice request into canonical tag names.

    ``spec`` may be ``None`` (infer from the family via
    :func:`default_slice_by`), a comma-separated string, or a sequence of
    tag names; ``"none"``/``"off"`` (or an empty sequence) disables
    slicing explicitly.  Aliases like ``hour`` or ``zone`` map to the
    canonical scenario tags.
    """
    if spec is None:
        return default_slice_by(kind, n_zones=n_zones)
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered in ("", "auto"):
            return default_slice_by(kind, n_zones=n_zones)
        if lowered in ("none", "off"):
            return ()
        parts = [p.strip() for p in spec.split(",")]
    else:
        parts = [str(p).strip() for p in spec]
    out: list[str] = []
    for part in parts:
        if not part:
            continue
        tag = SLICE_TAG_ALIASES.get(part.lower(), part)
        if tag not in out:
            out.append(tag)
    return tuple(out)


def expand_study_kind(
    kind: str,
    net: Network,
    *,
    n_scenarios: int | None = None,
    lo_percent: float = 80.0,
    hi_percent: float = 120.0,
    sigma_percent: float = 5.0,
    seed: int = 0,
    depth: int = 2,
    n_zones: int = 0,
    rho_percent: float = 0.0,
) -> ScenarioStream:
    """One study-kind -> scenario-stream factory for every front end.

    The CLI ``study`` subcommand, the service's ``StudyRequest``
    expansion, and any future transport all describe a family the same
    flat way (kind + percent-scaled knobs); this is the single place
    that mapping lives.  ``n_scenarios`` means draws (monte_carlo/lhs),
    steps (sweep/profile), or the combination cap (outage), matching
    each family's natural count.  ``n_zones >= 2`` switches Monte Carlo
    to zonal correlated draws (equicorrelation ``rho_percent`` across
    zones, each scenario tagged with its stress-driving ``hot_zone``).
    """
    kind = kind.replace("-", "_")
    if n_zones >= 2 and kind != "monte_carlo":
        raise ValueError(
            f"zonal correlated draws (n_zones={n_zones}) apply to "
            "monte_carlo studies only"
        )
    if n_zones > net.n_bus:
        # More zones than buses would leave empty bus bands whose drawn
        # factors scale nothing yet could still win the hot_zone argmax.
        raise ValueError(
            f"n_zones={n_zones} exceeds the case's {net.n_bus} buses; "
            "every zone must contain at least one bus"
        )
    if kind == "sweep":
        return load_sweep(lo_percent / 100.0, hi_percent / 100.0, n_scenarios or 9)
    if kind == "profile":
        return daily_profile(steps=n_scenarios or 24)
    if kind == "outage":
        return outage_combinations(net, depth=depth, limit=n_scenarios or 50)
    if kind == "lhs":
        return latin_hypercube(
            n=n_scenarios or 100,
            lo=lo_percent / 100.0,
            hi=hi_percent / 100.0,
            seed=seed,
        )
    if kind == "monte_carlo":
        correlation = (
            uniform_correlation(n_zones, rho_percent / 100.0)
            if n_zones >= 2
            else None
        )
        return monte_carlo_ensemble(
            n=n_scenarios or 200,
            sigma=sigma_percent / 100.0,
            seed=seed,
            correlation=correlation,
        )
    raise ValueError(
        f"unknown study kind {kind!r}; use one of {STUDY_FAMILY_KINDS}"
    )


def factorial(*families: Iterable[Scenario]) -> ScenarioStream:
    """Full-factorial cross of any scenario families' perturbation tuples.

    Every combination concatenates one scenario from each family (in
    argument order) into a single operating point: names join with ``"x"``,
    perturbations concatenate, and tags merge (later families win on
    collisions) under fresh ``family="factorial"`` / ``index`` coordinates.
    The cross product is enumerated lazily — ``factorial(sweep, outages)``
    over a 9-point sweep and 200 outages never holds 1800 scenarios.
    """
    if not families:
        raise ValueError("factorial() needs at least one scenario family")
    streams = [as_stream(f) for f in families]
    lengths = [stream_length(s) for s in streams]
    total: int | None = 1
    for n in lengths:
        total = None if (total is None or n is None) else total * n

    def gen() -> Iterator[Scenario]:
        # itertools.product buffers each input family (small) while the
        # product itself — the big object — stays lazy.
        for i, combo in enumerate(itertools.product(*streams)):
            tags: dict = {}
            for s in combo:
                tags.update(s.tags)
            tags.update({"family": "factorial", "index": i})
            yield Scenario(
                name="x".join(s.name for s in combo),
                perturbations=tuple(
                    p for s in combo for p in s.perturbations
                ),
                tags=tags,
            )

    return ScenarioStream(gen, length=total, family="factorial")
