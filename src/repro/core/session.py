"""GridMindSession: the conversational front door.

Wires one simulated LLM backend, the shared context, the planner, the two
domain agents and the instrumentation bench into a single object::

    session = GridMindSession(model="gpt-5-mini")
    reply = session.ask("Solve the IEEE 118 bus case")
    print(reply.text)
    reply = session.ask("Increase the load at bus 10 to 50 MW")
    reply = session.ask("What are the most critical contingencies?")

Timing semantics: ``reply.latency_s`` is the *virtual* LLM latency the
model profile charges (what a user of the paper's system would wait for
the remote API), ``reply.wall_s`` the real compute spent in solvers and
harness, and ``reply.total_s`` their sum — the analogue of the paper's
reported execution times.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..instrumentation import RunLogger, RequestRecord, audit_narration
from ..instrumentation.metrics import get_metrics
from ..instrumentation.trace import get_tracer
from ..llm.latency import VirtualClock
from ..llm.simulated import SimulatedLLM
from .agents.acopf_agent import make_acopf_agent
from .agents.contingency_agent import make_contingency_agent
from .agents.coordinator import Coordinator, SessionReply
from .agents.planner import PlannerAgent
from .agents.study_agent import make_study_agent
from .context import AgentContext


class GridMindSession:
    """A persistent conversational analysis session.

    The single-session core the service layer wraps: pass
    ``study_executor`` to route batch studies through a shared long-lived
    process pool (instead of per-run pools) and ``result_store`` to
    persist full study result sets across sessions — both are what
    :class:`repro.service.GridMindService` injects for every session it
    creates.  ``max_log_records`` bounds the instrumentation window for
    long-lived sessions (``None`` keeps everything).
    """

    def __init__(
        self,
        model: str = "gpt-5-mini",
        *,
        seed: int = 0,
        session_id: str = "",
        study_executor=None,
        result_store=None,
        max_log_records: int | None = None,
    ) -> None:
        self.clock = VirtualClock()
        self.backend = SimulatedLLM(model, seed=seed, clock=self.clock)
        self.model = self.backend.name
        self.seed = seed
        self.session_id = session_id
        self.study_executor = study_executor
        self.result_store = result_store
        self.context = AgentContext()
        self.context.result_store = result_store
        self.agents = {
            "acopf": make_acopf_agent(self.backend, self.context),
            "contingency": make_contingency_agent(self.backend, self.context),
            "study": make_study_agent(
                self.backend,
                self.context,
                executor=study_executor,
                store=result_store,
            ),
        }
        self.planner = PlannerAgent(self.backend, clock=self.clock)
        self.coordinator = Coordinator(self.planner, self.agents, self.context)
        self.logger = RunLogger(max_records=max_log_records)

    # ------------------------------------------------------------------
    def ask(self, text: str) -> SessionReply:
        """Process one natural-language request end to end."""
        clock_before = self.clock.now
        wall_start = time.perf_counter()
        with get_tracer().span(
            "session.turn", model=self.model, session_id=self.session_id
        ) as span:
            reply = self.coordinator.dispatch(text)
            span.tags["agents"] = ",".join(reply.agents_involved)
        reply.wall_s = time.perf_counter() - wall_start
        reply.latency_s = self.clock.now - clock_before

        # Ground-truth payloads for auditing: the structured tool results
        # this turn produced, plus the current context artefacts.
        audit_payloads = [c.result for c in reply.tool_calls if c.result]
        audit_payloads.extend(c.arguments for c in reply.tool_calls if c.arguments)
        if self.context.acopf_solution is not None:
            audit_payloads.append(self.context.acopf_solution.model_dump())
        if self.context.ca_result is not None:
            audit_payloads.append(self.context.ca_result.model_dump())
        audit = audit_narration(reply.text, audit_payloads)

        success = bool(reply.replies) and not any(
            not c.ok for c in reply.tool_calls
        )
        self.logger.log(
            RequestRecord(
                model=self.model,
                request=text,
                agents=reply.agents_involved,
                success=success,
                latency_virtual_s=reply.latency_s,
                wall_s=reply.wall_s,
                total_s=reply.latency_s + reply.wall_s,
                prompt_tokens=reply.usage.prompt_tokens,
                completion_tokens=reply.usage.completion_tokens,
                n_tool_calls=len(reply.tool_calls),
                n_tool_failures=sum(1 for c in reply.tool_calls if not c.ok),
                factual_slips=len(audit.slips),
            )
        )
        metrics = get_metrics()
        metrics.counter(
            "gridmind_requests_total", "Session turns by model and outcome"
        ).inc(model=self.model, success=success)
        metrics.histogram(
            "gridmind_request_wall_seconds", "Real compute time per session turn"
        ).observe(reply.wall_s)
        if audit.slips:
            metrics.counter(
                "gridmind_factual_slips_total", "Narration claims failing the audit"
            ).inc(len(audit.slips))
        return reply

    # ------------------------------------------------------------------
    @property
    def last_record(self) -> RequestRecord | None:
        return self.logger.records[-1] if self.logger.records else None

    def metrics(self) -> dict:
        """Instrumentation summary for this session."""
        return self.logger.summary()

    def save(self, path: str | Path) -> None:
        """Persist the analytical state (not the chat transcript)."""
        self.context.save(path)

    def resume(self, path: str | Path) -> None:
        """Restore analytical state saved by :meth:`save`."""
        self.context = AgentContext.load(path)
        self.context.result_store = self.result_store
        for agent in self.agents.values():
            agent.context = self.context
        self.coordinator.context = self.context
        # Re-bind the tool registries to the restored context, keeping the
        # shared executor/store wiring the session was created with.
        from .agents.acopf_agent import build_acopf_registry
        from .agents.contingency_agent import build_ca_registry
        from .agents.study_agent import build_study_registry

        self.agents["acopf"].registry = build_acopf_registry(self.context)
        self.agents["contingency"].registry = build_ca_registry(self.context)
        self.agents["study"].registry = build_study_registry(
            self.context, executor=self.study_executor, store=self.result_store
        )

    def export_log(self, path: str | Path) -> None:
        """Dump instrumentation records as JSON lines."""
        with open(path, "w") as fh:
            for rec in self.logger.records:
                fh.write(json.dumps(rec.__dict__, default=str) + "\n")
