"""Fast-decoupled power flow (Stott & Alsac), XB and BX variants.

The B' / B'' matrices are factorised once with SuperLU and reused across
all half-iterations, which is the entire point of the method: many cheap
triangular solves instead of one Jacobian LU per Newton step.  Serves as
the mid-tier recovery/speed option between Newton and DC.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

from ..grid.components import BusType
from ..grid.network import Network, NetworkArrays
from ..instrumentation.probes import instrument_solver
from .newton import bus_power_injections
from .solution import PowerFlowResult, finalize_solution, make_admittances


def _series_susceptance_matrices(
    arr: NetworkArrays, variant: str
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Build (B', B'') per the XB (default) or BX scheme."""
    nb, nl = arr.n_bus, arr.n_branch
    rows = np.arange(nl)
    cf = sparse.csr_matrix((np.ones(nl), (rows, arr.f_bus)), shape=(nl, nb))
    ct = sparse.csr_matrix((np.ones(nl), (rows, arr.t_bus)), shape=(nl, nb))
    cft = cf - ct

    if variant == "xb":
        # B': ignore resistance; B'': full branch susceptance + shunts.
        bp_series = 1.0 / arr.x
        ys = 1.0 / (arr.r + 1j * arr.x)
        bpp_series = -ys.imag
    elif variant == "bx":
        ys = 1.0 / (arr.r + 1j * arr.x)
        bp_series = -ys.imag
        bpp_series = 1.0 / arr.x
    else:
        raise ValueError(f"unknown fast-decoupled variant {variant!r}")

    bp = cft.T @ sparse.diags(bp_series) @ cft
    bpp = cft.T @ sparse.diags(bpp_series) @ cft
    bpp = bpp + sparse.diags(
        np.asarray(
            cf.T @ (arr.b_charge / 2.0) + ct.T @ (arr.b_charge / 2.0)
        ).ravel()
        + arr.bs
    )
    return bp.tocsr(), bpp.tocsr()


@instrument_solver("fast_decoupled")
def solve_fast_decoupled(
    net: Network,
    *,
    tol: float = 1e-8,
    max_iter: int = 60,
    variant: str = "xb",
    v0: np.ndarray | None = None,
) -> PowerFlowResult:
    """Solve the AC power flow with the fast-decoupled method."""
    start = time.perf_counter()
    arr, adm = make_admittances(net)

    v = (
        np.asarray(v0, dtype=complex).copy()
        if v0 is not None
        else arr.vm0 * np.exp(1j * arr.va0)
    )
    vm = np.abs(v)
    va = np.angle(v)

    pv = np.flatnonzero(arr.bus_type == int(BusType.PV))
    pq = np.flatnonzero(arr.bus_type == int(BusType.PQ))
    pvpq = np.concatenate([pv, pq])

    sbus = bus_power_injections(arr)
    bp, bpp = _series_susceptance_matrices(arr, variant)

    lu_p = sla.splu(bp[np.ix_(pvpq, pvpq)].tocsc())
    lu_q = sla.splu(bpp[np.ix_(pq, pq)].tocsc()) if pq.size else None

    def mismatches(vc: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        mis = vc * np.conj(adm.ybus @ vc) - sbus
        p = mis[pvpq].real / np.abs(vc[pvpq])
        q = mis[pq].imag / np.abs(vc[pq])
        full = np.concatenate([mis[pvpq].real, mis[pq].imag])
        return p, q, float(np.max(np.abs(full))) if full.size else 0.0

    converged = False
    norm = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        v = vm * np.exp(1j * va)
        p_mis, _, norm = mismatches(v)
        if norm < tol:
            converged = True
            break
        va[pvpq] -= lu_p.solve(p_mis)

        v = vm * np.exp(1j * va)
        _, q_mis, norm = mismatches(v)
        if norm < tol:
            converged = True
            break
        if lu_q is not None:
            vm[pq] -= lu_q.solve(q_mis)

    v = vm * np.exp(1j * va)
    _, _, norm = mismatches(v)
    converged = converged or norm < tol

    return finalize_solution(
        net,
        arr,
        adm,
        v,
        converged=converged,
        iterations=it,
        method=f"fdpf-{variant}",
        max_mismatch_pu=norm,
        runtime_s=time.perf_counter() - start,
        message=(
            f"converged in {it} half-iteration sweeps"
            if converged
            else f"fast-decoupled ({variant}) did not converge in {max_iter} sweeps"
        ),
    )
