"""GridMindSession end-to-end behaviour and instrumentation."""

import json

import pytest

from repro.core.session import GridMindSession


class TestSessionDialogues:
    def test_paper_dialogue_sequence(self, session_factory):
        """The abridged dialogue of paper Section 3.2.3."""
        session = session_factory()
        r1 = session.ask("Solve IEEE 14.")
        assert "generation cost" in r1.text
        r2 = session.ask("Increase the load for bus 10 to 50MW")
        assert "bus 10" in r2.text
        r3 = session.ask("what's the most critical contingencies in this network")
        assert "critical" in r3.text.lower()
        assert session.metrics()["success_rate"] == 1.0

    def test_clarification_flow(self, session_factory):
        session = session_factory()
        reply = session.ask("solve the case please")
        assert "Which test case" in reply.text
        reply = session.ask("solve ieee 30")
        assert "ieee30" in reply.text

    def test_unknown_request_gets_capability_answer(self, session_factory):
        session = session_factory()
        reply = session.ask("what's the weather on mars?")
        assert reply.text  # graceful, non-empty response

    def test_virtual_latency_positive_and_model_scaled(self):
        fast = GridMindSession(model="gpt-o4-mini", seed=0)
        slow = GridMindSession(model="gpt-5", seed=0)
        fast.ask("Solve IEEE 14")
        slow.ask("Solve IEEE 14")
        assert 0 < fast.last_record.latency_virtual_s < slow.last_record.latency_virtual_s

    def test_tokens_accounted(self, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        rec = session.last_record
        assert rec.prompt_tokens > 0
        assert rec.completion_tokens > 0

    def test_no_factual_slips_in_standard_flow(self, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        session.ask("Increase the load at bus 9 by 10 MW")
        session.ask("most critical contingencies?")
        assert session.metrics()["factual_slips"] == 0

    def test_failed_tool_marks_request_unsuccessful(self, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        session.ask("set the load at bus 9999 to 10 MW")
        assert session.last_record.success is False


class TestSessionPersistence:
    def test_save_resume_roundtrip(self, tmp_path, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        cost = session.context.acopf_solution.objective_cost
        path = tmp_path / "s.json"
        session.save(path)

        resumed = session_factory()
        resumed.resume(path)
        assert resumed.context.case_name == "ieee14"
        assert resumed.context.acopf_solution.objective_cost == pytest.approx(cost)
        # The resumed session can continue working on the restored state.
        reply = resumed.ask("what's the network status?")
        assert "ieee14" in reply.text

    def test_export_log(self, tmp_path, session_factory):
        session = session_factory()
        session.ask("Solve IEEE 14")
        path = tmp_path / "log.jsonl"
        session.export_log(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["model"] == "gpt-o4-mini"
        assert rec["success"] is True


class TestRunLogger:
    def test_by_model_grouping(self):
        from repro.instrumentation import RequestRecord, RunLogger

        log = RunLogger()
        for model in ("a", "a", "b"):
            log.log(
                RequestRecord(
                    model=model, request="r", agents=["x"], success=True,
                    latency_virtual_s=1.0, wall_s=0.1, total_s=1.1,
                    prompt_tokens=10, completion_tokens=5,
                    n_tool_calls=1, n_tool_failures=0,
                )
            )
        grouped = log.by_model()
        assert grouped["a"]["n_requests"] == 2
        assert grouped["b"]["n_requests"] == 1

    def test_summary_empty(self):
        from repro.instrumentation import RunLogger

        s = RunLogger().summary()
        assert s["n_requests"] == 0
        assert s["success_rate"] == 0.0
