"""Live telemetry: simulated device fleet, windowed studies, watch loop.

The standing-workload vertical (ROADMAP: agents observing a continuous
grid rather than running one-shot studies):

* :mod:`repro.telemetry.fleet` — :class:`DeviceFleet`, a deterministic
  simulated meter/DER population with per-device child seeds (any prefix
  of the feed is reproducible at any fleet size) and injectable
  anomalies,
* :mod:`repro.telemetry.feed` — :class:`TelemetryStream`, the adapter
  from timestamped frames to the :class:`~repro.scenarios.stream
  .ScenarioStream` contract, with simulated or wall-clock pacing,
* :mod:`repro.telemetry.window` — :class:`RollingWindowStudy`,
  tumbling/sliding windows of :class:`~repro.scenarios.aggregate
  .SlicedReducer`s with eviction (O(window + K) memory on an unbounded
  feed) plus the :func:`telemetry_rules` health glue,
* :mod:`repro.telemetry.watch` — :func:`run_watch`, the shared engine
  behind ``gridmind watch``, the service's ``WatchRequest`` surface, and
  the study agent's watch tool.

Quickstart::

    from repro import load_case
    from repro.telemetry import AnomalySpec, run_watch

    out = run_watch(
        load_case("ieee14"), n_devices=200, n_ticks=24, window_ticks=4,
        anomaly=AnomalySpec(start_tick=10, duration_ticks=4),
    )
    print(out["n_windows"], out["n_alerts"], out["digest"])
"""

from .feed import PACE_SIMULATED, PACE_WALL, TelemetryStream
from .fleet import (
    ANOMALY_KINDS,
    DEFAULT_INTERVAL_S,
    AnomalySpec,
    DeviceFleet,
    FleetSpec,
    TelemetryFrame,
    device_seed,
    frame_seed,
)
from .watch import run_watch
from .window import (
    DEFAULT_WINDOW_SLICES,
    RollingWindowStudy,
    WindowResult,
    WindowSpec,
    telemetry_rules,
    windows_digest,
)

__all__ = [
    "ANOMALY_KINDS",
    "DEFAULT_INTERVAL_S",
    "DEFAULT_WINDOW_SLICES",
    "PACE_SIMULATED",
    "PACE_WALL",
    "AnomalySpec",
    "DeviceFleet",
    "FleetSpec",
    "RollingWindowStudy",
    "TelemetryFrame",
    "TelemetryStream",
    "WindowResult",
    "WindowSpec",
    "device_seed",
    "frame_seed",
    "run_watch",
    "telemetry_rules",
    "windows_digest",
]
