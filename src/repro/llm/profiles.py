"""Simulated model profiles for the six LLMs the paper evaluates.

Each profile drives the *same* rule-grammar planner — the paper's central
result is that function calling makes analytical accuracy model-agnostic —
but differs in:

* latency distributions, calibrated to Figure 3 (ACOPF task) and Table 1
  (contingency task) of the paper,
* verbosity (narration detail) and token throughput,
* contingency-ranking emphasis: the ``gpt-5-mini`` profile weights
  thermal evidence more heavily and scans a wider stress window, which is
  how the paper's Table 1 outlier row (different 5th critical line and a
  higher 165 % max overload) is reproduced.

Latency calibration notes (paper values):
  Fig. 3 middle (case118 ACOPF, total):  o4-mini < 10 s; o3 ~15-25 s;
  5-mini / 5-nano ~35-55 s; Claude ~45-70 s; GPT-5 ~55-80 s.
  Table 1 (case118 CA, total): GPT-5 92.7, 5-mini 24.8, 5-nano 26.2,
  o4-mini 34.2, o3 24.6, Claude-4-Sonnet 63.3 s.
An ACOPF session makes ~3 completions and a CA session ~4, so per-call
medians below are those totals divided accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .latency import LatencyModel


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural parameters of one simulated model."""

    name: str
    provider: str
    # Per-completion latency on conversational/ACOPF-style tasks.
    chat_latency: LatencyModel
    # Per-completion latency on contingency (long-context) tasks.
    deep_latency: LatencyModel
    output_tokens_per_s: float = 60.0
    verbosity: int = 1  # 0 terse, 1 normal, 2 expansive
    # Contingency ranking behaviour.
    ca_weights_profile: str = "balanced"  # "balanced" | "thermal"
    ca_overload_threshold: float = 100.0  # what this profile calls an overload
    description: str = ""
    quirks: dict = field(default_factory=dict)


PROFILES: dict[str, ModelProfile] = {
    p.name: p
    for p in [
        ModelProfile(
            name="gpt-5",
            provider="openai",
            chat_latency=LatencyModel(21.0, 0.22),
            deep_latency=LatencyModel(22.0, 0.18),
            output_tokens_per_s=45.0,
            verbosity=2,
            description="Largest reasoning model: slowest, most expansive narration.",
        ),
        ModelProfile(
            name="gpt-5-mini",
            provider="openai",
            chat_latency=LatencyModel(14.0, 0.28),
            deep_latency=LatencyModel(5.3, 0.22),
            output_tokens_per_s=80.0,
            verbosity=1,
            ca_weights_profile="thermal",
            ca_overload_threshold=97.0,
            description=(
                "Mid-size model; thermally-weighted contingency heuristic with a "
                "wider stress window — reproduces Table 1's divergent row."
            ),
            quirks={"reports_extra_stress": True},
        ),
        ModelProfile(
            name="gpt-5-nano",
            provider="openai",
            chat_latency=LatencyModel(13.0, 0.30),
            deep_latency=LatencyModel(5.6, 0.25),
            output_tokens_per_s=95.0,
            verbosity=0,
            description="Smallest GPT-5 family member: terse and quick.",
        ),
        ModelProfile(
            name="gpt-o4-mini",
            provider="openai",
            chat_latency=LatencyModel(2.3, 0.35),
            deep_latency=LatencyModel(7.6, 0.25),
            output_tokens_per_s=100.0,
            verbosity=0,
            description="Fast distilled reasoner: most variable, lowest chat latency.",
        ),
        ModelProfile(
            name="gpt-o3",
            provider="openai",
            chat_latency=LatencyModel(6.0, 0.25),
            deep_latency=LatencyModel(5.2, 0.22),
            output_tokens_per_s=70.0,
            verbosity=1,
            description="Previous-generation reasoning model: quick and steady.",
        ),
        ModelProfile(
            name="claude-4-sonnet",
            provider="anthropic",
            chat_latency=LatencyModel(17.0, 0.22),
            deep_latency=LatencyModel(14.5, 0.20),
            output_tokens_per_s=55.0,
            verbosity=2,
            description="Anthropic mid-size model: thorough narration, mid latency.",
        ),
    ]
}

#: Paper-order listing used by the benchmark harnesses.
PAPER_MODELS: tuple[str, ...] = (
    "gpt-5",
    "gpt-5-mini",
    "gpt-5-nano",
    "gpt-o4-mini",
    "gpt-o3",
    "claude-4-sonnet",
)

_ALIASES = {
    "gpt5": "gpt-5",
    "gpt-5-mini": "gpt-5-mini",
    "gpt5-mini": "gpt-5-mini",
    "gpt-5-nano": "gpt-5-nano",
    "gpt5-nano": "gpt-5-nano",
    "o4-mini": "gpt-o4-mini",
    "gpt-o4-mini": "gpt-o4-mini",
    "o3": "gpt-o3",
    "gpt-o3": "gpt-o3",
    "claude": "claude-4-sonnet",
    "claude-4-sonnet": "claude-4-sonnet",
    "claude-sonnet-4": "claude-4-sonnet",
    "sonnet": "claude-4-sonnet",
}


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by name or common alias (case-insensitive)."""
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    if key not in PROFILES:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(PROFILES))}"
        )
    return PROFILES[key]
