"""Per-session resource accounting on top of the metrics registry.

Every service session gets a label; work done on its behalf — agent
turns, study chunks, scenarios solved, executor wall-time — is recorded
into session-labelled counters so "which session is burning the pool?"
is a registry query, not a log grep.

Attribution travels by contextvar: :func:`session_scope` binds the
session label around a request, and because both ``asyncio.to_thread``
and the service's request path copy contextvars, the label is visible
inside the synchronous study fold loop without threading an argument
through every layer.  Worker processes never see the label — chunk
metrics ship back via ``state_delta`` unlabelled, and the *parent-side*
fold loop attributes them (one :func:`record_chunk` per
``ChunkOutcome``), which keeps attribution correct under the shared
process pool where one worker serves many sessions.

The counters are ordinary registry instruments, so session usage flows
through snapshots, Prometheus exposition, and the rollup/health layer
for free (``gridmind top`` derives per-session rates from them).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

from .metrics import MetricsRegistry, get_metrics

#: Label applied when work runs outside any session scope (direct
#: ``run_study`` calls, scripts, tests).
UNATTRIBUTED = "_direct"

_SESSION: ContextVar[str] = ContextVar("gridmind_session", default=UNATTRIBUTED)


def current_session() -> str:
    """The session label bound to the current context."""
    return _SESSION.get()


@contextlib.contextmanager
def session_scope(session_id: str | None) -> Iterator[str]:
    """Bind ``session_id`` as the accounting label for the enclosed work."""
    label = session_id or UNATTRIBUTED
    token = _SESSION.set(label)
    try:
        yield label
    finally:
        _SESSION.reset(token)


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
def _registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    return registry if registry is not None else get_metrics()


def record_turn(
    session: str | None = None, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one agent turn against ``session`` (default: current scope)."""
    label = session or current_session()
    _registry(registry).counter(
        "gridmind_session_turns_total", "Agent turns per session."
    ).inc(session=label)


def record_chunk(
    n_scenarios: int,
    wall_s: float,
    session: str | None = None,
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Attribute one completed study chunk to ``session``.

    ``wall_s`` is the worker-side chunk wall time, i.e. executor
    occupancy bought by this session — the fair-share currency.
    """
    label = session or current_session()
    reg = _registry(registry)
    reg.counter(
        "gridmind_session_chunks_total", "Study chunks per session."
    ).inc(session=label)
    reg.counter(
        "gridmind_session_scenarios_total", "Scenarios solved per session."
    ).inc(n_scenarios, session=label)
    reg.counter(
        "gridmind_session_executor_seconds_total",
        "Executor worker wall-seconds consumed per session.",
    ).inc(wall_s, session=label)


def record_study(
    session: str | None = None, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one completed study against ``session``."""
    label = session or current_session()
    _registry(registry).counter(
        "gridmind_session_studies_total", "Completed studies per session."
    ).inc(session=label)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
_USAGE_COUNTERS = {
    "turns": "gridmind_session_turns_total",
    "studies": "gridmind_session_studies_total",
    "chunks": "gridmind_session_chunks_total",
    "scenarios": "gridmind_session_scenarios_total",
    "executor_seconds": "gridmind_session_executor_seconds_total",
}


def session_usage(
    session: str, *, registry: MetricsRegistry | None = None
) -> dict[str, float]:
    """Cumulative usage for one session label, zero-filled.

    Reads the live registry (not snapshots): the answer is current as of
    the call, matching what ``SessionInfo`` surfaces per request.
    """
    reg = _registry(registry)
    state = reg.state()
    counters = state.get("counters", {})
    usage: dict[str, float] = {}
    for field, metric in _USAGE_COUNTERS.items():
        series = counters.get(metric, {}).get("series", {})
        total = 0.0
        for key, value in series.items():
            if ("session", session) in key:
                total += value
        usage[field] = total
    return usage


def known_sessions(*, registry: MetricsRegistry | None = None) -> list[str]:
    """Session labels that have recorded any usage, sorted."""
    state = _registry(registry).state()
    counters = state.get("counters", {})
    labels: set[str] = set()
    for metric in _USAGE_COUNTERS.values():
        for key in counters.get(metric, {}).get("series", {}):
            for k, v in key:
                if k == "session":
                    labels.add(v)
    return sorted(labels)
