"""Scenario engine: declarative operating-point studies at ensemble scale.

The study workflow the paper motivates ("adjust load levels, re-solve,
inspect impacts") made batch-first:

* :mod:`repro.scenarios.spec` — perturbation records and :class:`Scenario`,
* :mod:`repro.scenarios.stream` — :class:`ScenarioStream`, the lazy
  re-iterable ensemble representation with per-index child seeds,
* :mod:`repro.scenarios.generators` — families (sweep, Monte Carlo, LHS,
  N-2 combinations, daily profile, factorial crosses) expanded lazily
  from compact descriptions,
* :mod:`repro.scenarios.runner` — :class:`BatchStudyRunner` with
  process-pool parallelism, bounded-window streaming dispatch, and
  per-worker cache reuse,
* :mod:`repro.scenarios.aggregate` — online :class:`StudyReducer`
  ensemble statistics (violation frequencies, exact-or-P²-sketched cost
  percentiles, critical-ranking stability).

Quickstart::

    from repro import load_case
    from repro.scenarios import BatchStudyRunner, monte_carlo_ensemble

    study = BatchStudyRunner(analysis="powerflow", n_jobs=4).run(
        load_case("ieee118"), monte_carlo_ensemble(n=200, sigma=0.05, seed=1)
    )
    print(study.aggregate().to_dict())
"""

from .aggregate import (
    DEFAULT_SLICE_MAX_VALUES,
    EXACT_STATS_CAP,
    OTHER_SLICE,
    P2Quantile,
    SlicedReducer,
    SliceSpec,
    StreamingStats,
    StudyAggregate,
    StudyReducer,
    aggregate_study,
    percentile_stats,
    slice_key,
)
from .generators import (
    FAMILY_SLICE_TAGS,
    STUDY_FAMILY_KINDS,
    correlation_transform,
    daily_profile,
    default_slice_by,
    expand_study_kind,
    factorial,
    latin_hypercube,
    load_sweep,
    monte_carlo_ensemble,
    outage_combinations,
    resolve_slice_by,
    uniform_correlation,
    with_branch_outage,
)
from .runner import (
    ANALYSES,
    BatchStudyRunner,
    ScenarioResult,
    StudyConfig,
    StudyProgress,
    StudyResult,
)
from .spec import (
    BranchOutage,
    GaussianLoadNoise,
    GeneratorOutage,
    LoadVector,
    PerBusLoadScale,
    Perturbation,
    RenewableInjection,
    Scenario,
    ScenarioError,
    UniformLoadScale,
    ZonalLoadScale,
)
from .stream import ScenarioStream, as_stream, child_seed, stream_length

__all__ = [
    "ANALYSES",
    "DEFAULT_SLICE_MAX_VALUES",
    "EXACT_STATS_CAP",
    "FAMILY_SLICE_TAGS",
    "OTHER_SLICE",
    "BatchStudyRunner",
    "BranchOutage",
    "GaussianLoadNoise",
    "GeneratorOutage",
    "LoadVector",
    "P2Quantile",
    "PerBusLoadScale",
    "Perturbation",
    "RenewableInjection",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioStream",
    "STUDY_FAMILY_KINDS",
    "SlicedReducer",
    "SliceSpec",
    "StreamingStats",
    "StudyAggregate",
    "StudyConfig",
    "StudyProgress",
    "StudyReducer",
    "StudyResult",
    "UniformLoadScale",
    "ZonalLoadScale",
    "aggregate_study",
    "as_stream",
    "child_seed",
    "correlation_transform",
    "daily_profile",
    "default_slice_by",
    "expand_study_kind",
    "factorial",
    "latin_hypercube",
    "load_sweep",
    "monte_carlo_ensemble",
    "outage_combinations",
    "percentile_stats",
    "resolve_slice_by",
    "slice_key",
    "stream_length",
    "uniform_correlation",
    "with_branch_outage",
]
