"""Unit conversion helpers for the per-unit system.

All solver-facing code works in per-unit on the system MVA base; the
public/agent-facing API speaks MW, MVAr, and degrees.  Keeping the
conversions in one module avoids the classic "is this MW or p.u.?" class
of bug: every boundary crossing calls one of these functions.
"""

from __future__ import annotations

import math

DEFAULT_BASE_MVA = 100.0

# Violation thresholds used throughout the paper (Section 3.2.3).
DEFAULT_VMIN_PU = 0.94
DEFAULT_VMAX_PU = 1.06

#: Max power-balance mismatch accepted as "validated" (paper Section 3.2.1).
POWER_BALANCE_TOL_PU = 1e-4


def mw_to_pu(mw: float, base_mva: float = DEFAULT_BASE_MVA) -> float:
    """Convert a megawatt quantity to per-unit on ``base_mva``."""
    return mw / base_mva


def pu_to_mw(pu: float, base_mva: float = DEFAULT_BASE_MVA) -> float:
    """Convert a per-unit power quantity on ``base_mva`` back to megawatts."""
    return pu * base_mva


def deg_to_rad(deg: float) -> float:
    """Convert degrees to radians (bus angles are stored in radians)."""
    return deg * math.pi / 180.0


def rad_to_deg(rad: float) -> float:
    """Convert radians to degrees for display at the API edge."""
    return rad * 180.0 / math.pi


def loading_percent(apparent_mva: float, rate_mva: float) -> float:
    """Branch loading as a percentage of its MVA rating.

    Unrated branches (``rate_mva <= 0``) report 0 % by convention, mirroring
    how MATPOWER/pandapower treat a zero rating as "unlimited".
    """
    if rate_mva <= 0.0:
        return 0.0
    return 100.0 * apparent_mva / rate_mva
