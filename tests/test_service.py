"""Service layer: concurrency semantics, shared executor, result store."""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.core.session import GridMindSession
from repro.core.tools import ToolRegistry
from repro.scenarios import BatchStudyRunner, load_sweep, monte_carlo_ensemble
from repro.service import (
    AskRequest,
    GridMindService,
    ResultStore,
    SessionNotFound,
    StudyExecutor,
    StudyNotFound,
    StudyRequest,
    derive_session_seed,
)


def _strip_timing(results):
    return [dataclasses.replace(r, solve_time_s=0.0) for r in results]


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        a = derive_session_seed(0, "alice")
        assert a == derive_session_seed(0, "alice")
        assert a != derive_session_seed(0, "bob")
        assert a != derive_session_seed(1, "alice")

    def test_creation_order_does_not_matter(self):
        async def seeds(order):
            async with GridMindService(seed=7) as svc:
                for sid in order:
                    svc.create_session(sid)
                return {i.session_id: i.seed for i in svc.sessions()}

        forward = asyncio.run(seeds(["a", "b", "c"]))
        backward = asyncio.run(seeds(["c", "b", "a"]))
        assert forward == backward


# ----------------------------------------------------------------------
# concurrency semantics
# ----------------------------------------------------------------------

_TURNS = {
    "alice": [
        "Solve the IEEE 14 bus case",
        "Increase the load at bus 9 by 10 MW",
        "what's the network status?",
    ],
    "bob": [
        "Solve the IEEE 30 bus case",
        "what's the network status?",
        "Increase the load at bus 7 by 5 MW",
    ],
    "carol": [
        "Solve the IEEE 14 bus case",
        "what's the most critical contingencies in this network",
        "what's the network status?",
    ],
}


class TestInterleavedDeterminism:
    def test_interleaved_equals_serial(self):
        """The acceptance gate: N concurrent sessions through the service
        reply byte-identically to the same turns run serially through
        stand-alone ``GridMindSession`` cores with the derived seeds."""

        async def interleaved():
            async with GridMindService(seed=0) as svc:
                out = {sid: [] for sid in _TURNS}
                for round_idx in range(3):
                    replies = await asyncio.gather(
                        *[
                            svc.ask(sid, turns[round_idx])
                            for sid, turns in _TURNS.items()
                        ]
                    )
                    for reply in replies:
                        out[reply.session_id].append(reply)
                return out

        service_replies = asyncio.run(interleaved())

        for sid, turns in _TURNS.items():
            session = GridMindSession(seed=derive_session_seed(0, sid))
            for turn_idx, text in enumerate(turns):
                serial = session.ask(text)
                concurrent = service_replies[sid][turn_idx]
                assert concurrent.text == serial.text, (sid, turn_idx)
                assert concurrent.latency_virtual_s == pytest.approx(
                    serial.latency_s
                )
                assert concurrent.agents == serial.agents_involved

    def test_same_session_turns_are_serialised(self):
        async def run():
            async with GridMindService(seed=0) as svc:
                r1, r2 = await asyncio.gather(
                    svc.ask("a", "Solve the IEEE 14 bus case"),
                    svc.ask("a", "what's the network status?"),
                )
                return r1, r2

        r1, r2 = asyncio.run(run())
        # gather preserves submission order under the per-session lock,
        # so the status question sees the solved case.
        assert (r1.turn, r2.turn) == (1, 2)
        assert "8,081" in r1.text
        assert "ieee14" in r2.text

    def test_unknown_session_without_create_raises(self):
        async def run():
            async with GridMindService() as svc:
                await svc.ask(
                    AskRequest(session_id="ghost", text="hi", create=False)
                )

        with pytest.raises(SessionNotFound):
            asyncio.run(run())

    def test_session_directory_and_close(self):
        async def run():
            async with GridMindService() as svc:
                svc.create_session("a")
                await svc.ask("b", "Solve the IEEE 14 bus case")
                ids = [i.session_id for i in svc.sessions()]
                svc.close_session("a")
                remaining = [i.session_id for i in svc.sessions()]
                return ids, remaining

        ids, remaining = asyncio.run(run())
        assert ids == ["a", "b"]
        assert remaining == ["b"]


# ----------------------------------------------------------------------
# shared executor
# ----------------------------------------------------------------------


class TestStudyExecutor:
    def test_back_to_back_studies_reuse_one_pool(self, case14):
        scenarios = load_sweep(0.9, 1.1, 8)
        config = BatchStudyRunner(analysis="powerflow").config()
        with StudyExecutor(max_workers=2) as executor:
            first = executor.run_study(case14, config, scenarios)
            pids_after_first = set(executor.worker_pids)
            second = executor.run_study(case14, config, scenarios)
            stats = executor.stats()
        assert stats["pools_started"] == 1  # the acceptance signal
        assert stats["n_studies"] == 2
        # The second study ran on the same warm workers.
        assert executor.worker_pids == pids_after_first
        assert _strip_timing(first) == _strip_timing(second)

    def test_broken_pool_is_replaced_on_next_study(self, case14):
        import os
        import signal
        from concurrent.futures.process import BrokenProcessPool

        scenarios = load_sweep(0.9, 1.1, 4)
        config = BatchStudyRunner(analysis="powerflow").config()
        with StudyExecutor(max_workers=1) as executor:
            executor.run_study(case14, config, scenarios)
            (pid,) = executor.worker_pids
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(BrokenProcessPool):
                executor.run_study(case14, config, scenarios)
            # The broken pool was dropped; the next study restarts fresh.
            results = executor.run_study(case14, config, scenarios)
            assert len(results) == 4
            assert executor.stats()["pools_started"] == 2

    def test_executor_results_match_serial_runner(self, case14):
        scenarios = monte_carlo_ensemble(n=6, sigma=0.05, seed=3)
        serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(
            case14, scenarios
        )
        with StudyExecutor(max_workers=2) as executor:
            shared = BatchStudyRunner(
                analysis="powerflow", executor=executor
            ).run(case14, scenarios)
        assert _strip_timing(shared.results) == _strip_timing(serial.results)
        assert shared.aggregate().to_dict() == serial.aggregate().to_dict()

    def test_sessions_share_the_service_executor(self, tmp_path):
        async def run():
            async with GridMindService(
                seed=0, max_workers=2, store_dir=str(tmp_path)
            ) as svc:
                await svc.ask(
                    "a", "Run a load sweep study from 95% to 105% in 3 steps "
                    "on ieee14 using power flow"
                )
                await svc.ask(
                    "b", "Run a load sweep study from 90% to 110% in 4 steps "
                    "on ieee14 using power flow"
                )
                return svc.executor.stats()

        stats = asyncio.run(run())
        assert stats["n_studies"] == 2
        assert stats["pools_started"] == 1


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------


class TestResultStore:
    def test_roundtrip_bit_identical(self, tmp_path, case14):
        scenarios = load_sweep(0.85, 1.15, 4)
        runner = BatchStudyRunner(analysis="dcopf")
        study = runner.run(case14, scenarios)
        store = ResultStore(tmp_path)
        key = store.put(
            case14, runner.config(), scenarios, study, study_kind="sweep"
        )

        reloaded = store.load_result(key)
        assert reloaded.results == study.results  # bit-identical records
        assert reloaded.case_name == study.case_name
        assert reloaded.aggregate().to_dict() == study.aggregate().to_dict()

    def test_key_is_content_addressed(self, tmp_path, case14, case30):
        scenarios = load_sweep(0.9, 1.1, 3)
        config = BatchStudyRunner(analysis="powerflow").config()
        store = ResultStore(tmp_path)
        key14 = store.key_for(case14, config, scenarios)
        assert key14 == store.key_for(case14, config, scenarios)
        # Different base network, different spec, different config -> new keys.
        assert key14 != store.key_for(case30, config, scenarios)
        assert key14 != store.key_for(case14, config, load_sweep(0.9, 1.1, 4))
        other = BatchStudyRunner(analysis="dcopf").config()
        assert key14 != store.key_for(case14, other, scenarios)

    def test_list_resolve_and_labels(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        runner = BatchStudyRunner(analysis="powerflow")
        for label, (lo, hi) in (("yesterday", (0.9, 1.1)), ("today", (0.8, 1.2))):
            scenarios = load_sweep(lo, hi, 3)
            store.put(
                case14, runner.config(), scenarios,
                runner.run(case14, scenarios),
                study_kind="sweep", label=label,
            )
        entries = store.list_studies()
        assert [m.label for m in entries] == ["yesterday", "today"]
        assert store.resolve("today") == entries[-1].key
        # Prefix resolution needs uniqueness: both keys share the network
        # hash (same base case), so the prefix must reach the spec hash.
        assert store.resolve(entries[0].key[:20]) == entries[0].key
        with pytest.raises(StudyNotFound):
            store.resolve("no-such-study")

    def test_compare_defaults_to_latest_pair(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        runner = BatchStudyRunner(analysis="powerflow")
        for lo, hi in ((0.95, 1.05), (0.8, 1.25)):
            scenarios = load_sweep(lo, hi, 4)
            store.put(
                case14, runner.config(), scenarios,
                runner.run(case14, scenarios), study_kind="sweep",
            )
        cmp = store.compare()
        assert cmp["same_base_network"] is True
        assert cmp["aggregate_a"]["n_scenarios"] == 4
        assert "violation_rate" in cmp["delta"]

    def test_compare_needs_two_studies(self, tmp_path):
        with pytest.raises(StudyNotFound):
            ResultStore(tmp_path).compare()

    def test_listing_survives_missing_sidecar(self, tmp_path, case14):
        store = ResultStore(tmp_path)
        runner = BatchStudyRunner(analysis="powerflow")
        scenarios = load_sweep(0.9, 1.1, 3)
        key = store.put(
            case14, runner.config(), scenarios,
            runner.run(case14, scenarios), study_kind="sweep",
        )
        (tmp_path / f"{key}.meta").unlink()  # older store / interrupted put
        entries = store.list_studies()
        assert [m.key for m in entries] == [key]
        assert entries[0].study_kind == "sweep"

    @pytest.mark.parametrize(
        "text",
        [
            "compare the last two studies",
            "compare the last two sweeps",
            "compare today's sweep with yesterday's",
            "compare the two Monte Carlo ensembles",
        ],
    )
    def test_compare_phrasings_parse_as_comparison(self, text):
        from repro.llm.nlu import Intent, classify

        parsed = classify(text)
        assert parsed.intent == Intent.RUN_STUDY
        assert parsed.entities.get("study_compare") is True


# ----------------------------------------------------------------------
# cross-session study flows
# ----------------------------------------------------------------------


class TestCrossSessionStudies:
    def test_fresh_session_compares_stored_studies(self, tmp_path):
        """Acceptance: a study persisted by one session is retrieved and
        compared by a brand-new session via the result store."""

        async def run():
            async with GridMindService(
                seed=0, max_workers=2, store_dir=str(tmp_path)
            ) as svc:
                await svc.run_study(
                    StudyRequest(
                        case_name="ieee14", kind="sweep", n_scenarios=3,
                        lo_percent=95, hi_percent=105, label="yesterday",
                    )
                )
                await svc.run_study(
                    StudyRequest(
                        case_name="ieee14", kind="sweep", n_scenarios=4,
                        lo_percent=80, hi_percent=120, label="today",
                    )
                )
                return await svc.ask("fresh", "compare the last two studies")

        reply = asyncio.run(run())
        assert reply.agents == ["study"]
        assert "Compared" in reply.text
        assert "violation" in reply.text

    def test_fresh_session_sees_stored_study_status(self, tmp_path):
        async def run():
            async with GridMindService(
                seed=0, store_dir=str(tmp_path)
            ) as svc:
                await svc.run_study(
                    StudyRequest(case_name="ieee14", kind="profile", n_scenarios=4)
                )
                return await svc.ask("fresh", "What are the results of the study?")

        reply = asyncio.run(run())
        assert "4-scenario" in reply.text

    def test_compare_without_store_is_a_tool_error(self):
        session = GridMindSession(seed=0)
        reply = session.ask("compare the last two studies")
        assert reply.tool_calls and not reply.tool_calls[0].ok
        assert "result store" in reply.text

    def test_direct_study_reply_has_key_and_summary(self, tmp_path):
        async def run():
            async with GridMindService(store_dir=str(tmp_path)) as svc:
                return await svc.run_study(
                    StudyRequest(case_name="ieee14", kind="monte_carlo",
                                 n_scenarios=3, sigma_percent=3.0)
                )

        reply = asyncio.run(run())
        assert reply.study_key is not None
        assert reply.n_scenarios == 3
        assert reply.summary["aggregate"]["n_scenarios"] == 3


# ----------------------------------------------------------------------
# ring-buffer tool log (satellite)
# ----------------------------------------------------------------------


class TestToolLogRingBuffer:
    def _registry(self, cap):
        reg = ToolRegistry(max_log_entries=cap)
        reg.register("echo", "echo the value", lambda value=0: {"value": value})
        return reg

    def test_log_capped_but_count_monotonic(self):
        reg = self._registry(5)
        for i in range(12):
            reg.call("echo", {"value": i})
        assert reg.call_count == 12
        assert len(reg.log) == 5
        assert [e.arguments["value"] for e in reg.log] == list(range(7, 12))

    def test_entries_since_survives_eviction(self):
        reg = self._registry(5)
        for i in range(8):
            reg.call("echo", {"value": i})
        recent = reg.entries_since(6)
        assert [e.seq for e in recent] == [6, 7]

    def test_export_log_writes_retained_window(self, tmp_path):
        reg = self._registry(3)
        for i in range(5):
            reg.call("echo", {"value": i})
        path = tmp_path / "tools.jsonl"
        reg.export_log(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in rows] == [2, 3, 4]

    def test_uncapped_by_default_none(self):
        reg = ToolRegistry(max_log_entries=None)
        reg.register("echo", "echo", lambda: {})
        for _ in range(10):
            reg.call("echo", {})
        assert len(reg.log) == 10

    def test_agent_turns_unaffected_by_tiny_cap(self):
        session = GridMindSession(seed=0)
        session.agents["acopf"].registry.max_log_entries = 2
        session.agents["acopf"].registry.__post_init__()
        reply = session.ask("Solve the IEEE 14 bus case")
        assert "8,081" in reply.text
        assert len(reply.tool_calls) >= 1

    def test_run_logger_cap(self):
        session = GridMindSession(seed=0, max_log_records=2)
        for text in ("Solve IEEE 14", "network status?", "Solve IEEE 14"):
            session.ask(text)
        assert len(session.logger.records) == 2
        assert session.last_record is not None
