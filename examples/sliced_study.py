#!/usr/bin/env python
"""Sliced studies: a daily load profile broken down by hour of day.

A study aggregate used to be one global number set ("7% of scenarios
violate"); dimensional aggregation answers the operator question behind
it — *which hours*.  This example:

* expands a sub-hourly daily profile lazily (every scenario tagged with
  its integer ``hour_of_day``),
* streams it through a :class:`SlicedReducer` — the global
  :class:`StudyReducer` plus one bounded-cardinality sub-reducer per
  observed hour — without retaining per-scenario records,
* prints the per-hour cost/violation table and the grounded narration
  the study agent would produce,
* and shows a zonal *correlated* Monte Carlo ensemble sliced by the
  zone driving each draw's stress.

Run:  PYTHONPATH=src python examples/sliced_study.py [steps]
      (defaults to 96 — a 15-minute profile; try 10000 for scale)
"""

from __future__ import annotations

import sys

from repro import load_case
from repro.llm.narration import narrate_study
from repro.scenarios import (
    BatchStudyRunner,
    daily_profile,
    monte_carlo_ensemble,
    uniform_correlation,
)

STEPS = int(sys.argv[1]) if len(sys.argv) > 1 else 96


def main() -> None:
    print("=" * 70)
    print(f"Daily profile on ieee14, {STEPS} steps, sliced by hour of day")
    print("=" * 70)
    net = load_case("ieee14")
    scenarios = daily_profile(steps=STEPS)
    runner = BatchStudyRunner(
        analysis="dcopf", n_jobs=1, slice_by=("hour_of_day",)
    )
    study = runner.run(net, scenarios, keep_results=False)
    agg = study.aggregate().to_dict()

    block = agg["slices"]["hour_of_day"]
    print(
        f"\n{study.n_scenarios} scenarios -> {block['n_cells']} hourly buckets "
        f"(peak resident results: {study.peak_resident_results})\n"
    )
    print(f"{'hour':>5s}  {'n':>5s}  {'viol%':>6s}  {'cost p50 $/h':>13s}  {'load p95 %':>11s}")
    for cell in block["cells"]:
        cost = cell.get("cost_stats") or {}
        loading = cell.get("loading_stats") or {}
        print(
            f"{cell['value']:>5s}  {cell['n']:>5d}  "
            f"{100.0 * cell['violation_rate']:>6.1f}  "
            f"{cost.get('p50', float('nan')):>13.2f}  "
            f"{loading.get('p95', float('nan')):>11.1f}"
        )

    print("\nNarrated (exactly what the study agent replies):\n")
    payload = study.to_dict(max_scenarios=3)
    payload["study_kind"] = "daily_profile"
    print(narrate_study(payload, verbosity=1))

    print()
    print("=" * 70)
    print("Correlated Monte Carlo (4 zones, rho=0.6), sliced by hot zone")
    print("=" * 70)
    corr = uniform_correlation(4, 0.6)
    mc = monte_carlo_ensemble(n=200, sigma=0.08, seed=7, correlation=corr)
    study2 = BatchStudyRunner(
        analysis="powerflow", slice_by=("hot_zone",)
    ).run(net, mc, keep_results=False)
    for cell in study2.aggregate().to_dict()["slices"]["hot_zone"]["cells"]:
        loading = cell.get("loading_stats") or {}
        print(
            f"  zone {cell['value']}: {cell['n']:>3d} draws, "
            f"{100.0 * cell['violation_rate']:.0f}% violations, "
            f"peak loading p95 {loading.get('p95', 0.0):.1f}%"
        )


if __name__ == "__main__":
    main()
