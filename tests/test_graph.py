"""Topology analysis: connectivity, islanding, bridges."""

import pytest

from repro.grid import graph as gg
from repro.grid.network import Network
from repro.grid.components import BusType


def test_connected_base(case14):
    assert gg.is_connected(case14)


def test_radial_all_bridges(radial_net):
    assert gg.bridge_branches(radial_net) == {0, 1, 2}


def test_meshed_no_bridges(tiny_net):
    assert gg.bridge_branches(tiny_net) == set()


def test_exclusion_simulates_outage(radial_net):
    assert not gg.is_connected(radial_net, {1})


def test_islanded_buses(radial_net):
    islands = gg.islanded_buses(radial_net, {0})
    assert islands == [{1, 2, 3}]


def test_islanded_none_when_meshed(tiny_net):
    assert gg.islanded_buses(tiny_net, {0}) == []


def test_stranded_load(radial_net):
    # Cutting branch 1 strands buses 2 and 3 (10 MW each).
    assert gg.stranded_load_mw(radial_net, {1}) == pytest.approx(20.0)


def test_stranded_load_zero_when_connected(tiny_net):
    assert gg.stranded_load_mw(tiny_net, {0}) == 0.0


def test_parallel_branches_not_bridges():
    net = Network()
    net.add_bus(bus_type=BusType.SLACK)
    net.buses[0].bus_type = BusType.SLACK
    net.add_bus()
    net.add_branch(0, 1, x_pu=0.1)
    net.add_branch(0, 1, x_pu=0.2)
    assert gg.bridge_branches(net) == set()


def test_out_of_service_branch_ignored(tiny_net):
    tiny_net.set_branch_status(2, False)
    # Now the triangle is a path 0-1-2: both remaining branches are bridges.
    assert gg.bridge_branches(tiny_net) == {0, 1}


def test_case118_has_no_bridges(case118):
    # The calibrated synthetic 118 meshes every bus into a loop.
    assert gg.bridge_branches(case118) == set()
