"""Tool registry, shared context, validation layer."""

import json

import pytest
from pydantic import BaseModel

from repro.core.context import AgentContext
from repro.core.tools import ToolError, ToolRegistry
from repro.core.validation import (
    sanity_check_modification,
    validate_acopf,
    validate_power_flow,
)
from repro.opf import solve_acopf
from repro.powerflow import solve_newton


class _Args(BaseModel):
    x: int
    y: str = "default"


class TestToolRegistry:
    def test_register_and_call(self):
        reg = ToolRegistry()
        reg.register("double", "doubles x", lambda x, y="default": {"out": 2 * x}, _Args)
        payload = json.loads(reg.call("double", {"x": 21}))
        assert payload == {"out": 42}

    def test_duplicate_name_rejected(self):
        reg = ToolRegistry()
        reg.register("t", "d", lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            reg.register("t", "d", lambda: {})

    def test_unknown_tool_returns_error_payload(self):
        reg = ToolRegistry()
        payload = json.loads(reg.call("nope", {}))
        assert "error" in payload
        assert reg.failures()

    def test_invalid_args_returns_error_payload(self):
        reg = ToolRegistry()
        reg.register("t", "d", lambda x, y="default": {"ok": True}, _Args)
        payload = json.loads(reg.call("t", {"x": "not-an-int-at-all"}))
        assert "invalid arguments" in payload["error"]

    def test_tool_error_captured(self):
        reg = ToolRegistry()

        def boom():
            raise ToolError("domain failure")

        reg.register("boom", "d", boom)
        payload = json.loads(reg.call("boom", {}))
        assert payload["error"] == "domain failure"
        assert not reg.log[-1].ok

    def test_non_dict_return_rejected(self):
        reg = ToolRegistry()
        reg.register("bad", "d", lambda: [1, 2, 3])
        payload = json.loads(reg.call("bad", {}))
        assert "expected dict" in payload["error"]

    def test_log_records_result(self):
        reg = ToolRegistry()
        reg.register("t", "d", lambda: {"value": 7})
        reg.call("t", {})
        assert reg.log[-1].result == {"value": 7}
        assert reg.log[-1].duration_s >= 0.0

    def test_specs_include_schema(self):
        reg = ToolRegistry()
        reg.register("t", "desc", lambda x, y="default": {}, _Args)
        spec = reg.specs()[0]
        assert "x" in spec.parameters["properties"]


class TestAgentContext:
    def test_activate_case(self):
        ctx = AgentContext()
        net = ctx.activate_case("ieee14")
        assert ctx.case_name == "ieee14"
        assert net.n_bus == 14

    def test_activate_same_case_keeps_network(self):
        ctx = AgentContext()
        n1 = ctx.activate_case("ieee14")
        n2 = ctx.activate_case("ieee14")
        assert n1 is n2

    def test_activate_other_case_resets_artifacts(self, session_factory):
        ctx = AgentContext()
        ctx.activate_case("ieee14")
        ctx.record_modification("load_change", "x")
        ctx.activate_case("ieee30")
        assert ctx.modifications == []
        assert ctx.acopf_solution is None

    def test_require_network_raises_when_empty(self):
        with pytest.raises(ValueError, match="no case loaded"):
            AgentContext().require_network()

    def test_freshness_tracks_network_version(self):
        from repro.core.agents.acopf_agent import solution_to_schema

        ctx = AgentContext()
        ctx.activate_case("ieee14")
        res = solve_acopf(ctx.network)
        ctx.deposit_acopf(solution_to_schema("ieee14", res), res)
        assert ctx.acopf_fresh()
        ctx.network.set_load(3, 55.0)
        assert not ctx.acopf_fresh()

    def test_summary_fields(self):
        ctx = AgentContext()
        ctx.activate_case("ieee14")
        s = ctx.summary()
        assert s["case"] == "ieee14"
        assert s["solved"] is False

    def test_system_model(self):
        ctx = AgentContext()
        ctx.activate_case("ieee14")
        model = ctx.system_model()
        assert model.n_bus == 14
        assert model.total_load_mw == pytest.approx(259.0)

    def test_save_load_roundtrip(self, tmp_path):
        from repro.core.agents.acopf_agent import solution_to_schema

        ctx = AgentContext()
        ctx.activate_case("ieee14")
        res = solve_acopf(ctx.network)
        ctx.deposit_acopf(solution_to_schema("ieee14", res), res)
        ctx.record_modification("load_change", "bus 3 to 55 MW", bus=3)
        path = tmp_path / "session.json"
        ctx.save(path)

        restored = AgentContext.load(path)
        assert restored.case_name == "ieee14"
        assert restored.acopf_solution.objective_cost == pytest.approx(
            ctx.acopf_solution.objective_cost
        )
        assert restored.acopf_fresh()
        assert len(restored.modifications) == 1

    def test_load_rejects_other_format(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="gridmind-session-v1"):
            AgentContext.load(p)


class TestValidation:
    def test_acopf_valid_solution_passes(self, case14):
        res = solve_acopf(case14)
        report = validate_acopf(case14, res)
        assert report.ok
        assert report.describe() == "all validation checks passed"

    def test_acopf_failed_solve_fails_validation(self, case14):
        case14.scale_loads(5.0)
        res = solve_acopf(case14)
        report = validate_acopf(case14, res)
        assert not report.ok
        assert "convergence" in report.failed_checks()

    def test_power_flow_validation(self, case14):
        res = solve_newton(case14)
        assert validate_power_flow(res).ok

    def test_power_flow_validation_divergence(self, case14):
        case14.scale_loads(20.0)
        res = solve_newton(case14, max_iter=10)
        assert not validate_power_flow(res).ok

    def test_sanity_check_bus(self, case14):
        assert sanity_check_modification(case14, bus=3).ok
        assert not sanity_check_modification(case14, bus=99).ok

    def test_sanity_check_branch(self, case14):
        assert sanity_check_modification(case14, branch_id=0).ok
        assert not sanity_check_modification(case14, branch_id=999).ok
        case14.set_branch_status(0, False)
        report = sanity_check_modification(case14, branch_id=0)
        assert not report.ok
        assert "already out of service" in report.describe()
