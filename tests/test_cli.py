"""CLI interface: argument parsing and non-interactive mode."""

import pytest

from repro.core.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.model == "gpt-5-mini"
    assert args.seed == 0


def test_parser_custom_model():
    args = build_parser().parse_args(["--model", "gpt-o3", "--seed", "7"])
    assert args.model == "gpt-o3"
    assert args.seed == 7


def test_noninteractive_ask(capsys):
    rc = main(["--model", "gpt-o4-mini", "--ask", "Solve IEEE 14"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "8,081" in out
    assert "gpt-o4-mini" in out


def test_noninteractive_multiple_asks(capsys):
    rc = main([
        "--model", "gpt-o4-mini",
        "--ask", "Solve IEEE 14",
        "--ask", "what is the network status?",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "14 buses" in out


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        main(["--model", "gpt-fake", "--ask", "Solve IEEE 14"])


def test_parser_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.command == "serve"
    assert args.workers == 2
    assert args.store is None
    assert not args.demo


def test_serve_turn_routes_named_sessions(tmp_path, capsys):
    rc = main([
        "serve",
        "--store", str(tmp_path),
        "--turn", "alice: Solve IEEE 14",
        "--turn", "bob: what can you do?",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[alice] Solved ACOPF for ieee14" in out
    assert "8,081" in out
    assert "[bob]" in out


def test_serve_turn_defaults_to_main_session(tmp_path, capsys):
    rc = main(["serve", "--store", str(tmp_path), "--turn", "Solve IEEE 14"])
    assert rc == 0
    assert "[main]" in capsys.readouterr().out
