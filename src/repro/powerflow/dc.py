"""Linearised DC power flow.

Used three ways in this repo: as the fast screening model for the
contingency engine (PTDF/LODF), as the network model inside DCOPF, and as
the "alternative algorithm" recovery path the paper's validation layer
falls back to when an AC solve fails.

The numerical core lives in :class:`repro.powerflow.batch.DcKernel`: one
sparse factorization per electrical topology, reused across solves, PTDF
computation, and whole stacked-injection batches.  ``solve_dc`` is the
one-network convenience wrapper; batch consumers (the scenario runner's
chunk fast path) hold a kernel and call ``solve_many`` directly.
"""

from __future__ import annotations

import time

import numpy as np

from ..grid.network import Network
from ..grid.units import rad_to_deg
from .batch import DcKernel, dc_injections
from .solution import PowerFlowResult


def solve_dc(net: Network, *, kernel: DcKernel | None = None) -> PowerFlowResult:
    """Solve ``Bbus theta = P`` with the slack angle pinned.

    Reactive quantities are zero by construction; loading percentages use
    |P| against the MVA rating (the usual DC convention).  ``kernel``
    accepts a prebuilt :class:`~repro.powerflow.batch.DcKernel` for the
    network's topology (ensemble callers amortise one factorization
    across every load level); by default one is built here.
    """
    start = time.perf_counter()
    arr = net.compile()
    if kernel is None:
        kernel = DcKernel(arr)

    p_inj = dc_injections(arr)
    sol = kernel.solve_one(p_inj)
    nl = arr.n_branch
    base = arr.base_mva

    # Lossless model: the slack units absorb any scheduled imbalance.
    slack = kernel.slack
    gen_p = arr.pg0.copy()
    slack_rows = np.flatnonzero(arr.gen_bus == slack)
    if slack_rows.size:
        gen_p[slack_rows] += -p_inj.sum() / slack_rows.size

    zeros = np.zeros(nl)
    return PowerFlowResult(
        converged=True,
        iterations=1,
        method="dc",
        max_mismatch_pu=0.0,
        vm=np.ones(arr.n_bus),
        va_deg=rad_to_deg(sol.theta),
        p_from_mw=sol.p_flow * base,
        q_from_mvar=zeros.copy(),
        p_to_mw=-sol.p_flow * base,
        q_to_mvar=zeros.copy(),
        s_from_mva=np.abs(sol.p_flow) * base,
        s_to_mva=np.abs(sol.p_flow) * base,
        loading_percent=sol.loading_percent,
        branch_ids=arr.branch_ids.copy(),
        gen_p_mw=gen_p * base,
        gen_q_mvar=np.zeros(arr.n_gen),
        gen_ids=arr.gen_ids.copy(),
        losses_mw=0.0,
        losses_mvar=0.0,
        runtime_s=time.perf_counter() - start,
        message="DC power flow (lossless linear model)",
    )
