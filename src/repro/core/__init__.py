"""GridMind core: schemas, tools, context, agents, session (DESIGN.md S8-S11)."""

from .context import AgentContext
from .schemas import (
    ACOPFSolution,
    BranchLoadingModel,
    ContingencyAnalysisResult,
    ContingencyRecord,
    Modification,
    PowerSystemModel,
    ProvenanceRecord,
    SolutionQuality,
    ToolCallLogEntry,
    WorkflowState,
    WorkflowStep,
)
from .session import GridMindSession
from .tools import RegisteredTool, ToolError, ToolRegistry
from .validation import (
    ValidationReport,
    sanity_check_modification,
    validate_acopf,
    validate_power_flow,
)

__all__ = [
    "ACOPFSolution",
    "AgentContext",
    "BranchLoadingModel",
    "ContingencyAnalysisResult",
    "ContingencyRecord",
    "GridMindSession",
    "Modification",
    "PowerSystemModel",
    "ProvenanceRecord",
    "RegisteredTool",
    "SolutionQuality",
    "ToolCallLogEntry",
    "ToolError",
    "ToolRegistry",
    "ValidationReport",
    "WorkflowState",
    "WorkflowStep",
    "sanity_check_modification",
    "validate_acopf",
    "validate_power_flow",
]
