"""Pydantic schema validation (paper Appendix C shapes)."""

import pytest
from pydantic import ValidationError

from repro.core.schemas import (
    ACOPFSolution,
    ContingencyAnalysisResult,
    ContingencyRecord,
    Modification,
    SolutionQuality,
    WorkflowState,
    WorkflowStep,
)


class TestACOPFSolution:
    def test_minimal_construction(self):
        sol = ACOPFSolution(case_name="ieee14", solved=True, objective_cost=8081.52)
        assert sol.solver == "acopf-ipm"
        assert sol.timestamp

    def test_round_trip_dump(self):
        sol = ACOPFSolution(
            case_name="ieee14",
            solved=True,
            objective_cost=8081.52,
            gen_dispatch_mw={"gen_0": 194.3},
        )
        again = ACOPFSolution(**sol.model_dump())
        assert again.gen_dispatch_mw["gen_0"] == 194.3


class TestSolutionQuality:
    def test_scores_bounded(self):
        with pytest.raises(ValidationError):
            SolutionQuality(
                overall_score=11.0, convergence_quality=5, constraint_satisfaction=5,
                economic_efficiency=5, system_security=5,
            )

    def test_valid_scores(self):
        q = SolutionQuality(
            overall_score=8.5, convergence_quality=10.0, constraint_satisfaction=9.0,
            economic_efficiency=7.0, system_security=8.0,
            recommendations=["ok"],
        )
        assert q.overall_score == 8.5


class TestContingencyModels:
    def test_record_defaults(self):
        rec = ContingencyRecord(rank=1, branch_id=5, from_bus=0, to_bus=1)
        assert rec.converged is True
        assert rec.islanded is False

    def test_result_set(self):
        res = ContingencyAnalysisResult(
            case_name="ieee118",
            n_contingencies=186,
            n_violations=50,
            max_overload_percent=160.0,
            critical=[ContingencyRecord(rank=1, branch_id=8, from_bus=2, to_bus=3)],
        )
        assert res.weights_profile == "balanced"
        assert len(res.critical) == 1


class TestWorkflowState:
    def test_mark_progression(self):
        wf = WorkflowState(
            request="solve then analyse",
            steps=[WorkflowStep(agent="acopf", clause="solve"),
                   WorkflowStep(agent="contingency", clause="analyse")],
        )
        wf.mark(0, "done")
        assert wf.status == "running"
        wf.mark(1, "done")
        assert wf.status == "done"

    def test_mark_failure(self):
        wf = WorkflowState(
            request="x",
            steps=[WorkflowStep(agent="acopf", clause="solve")],
        )
        wf.mark(0, "failed")
        assert wf.status == "failed"


def test_modification_record():
    m = Modification(kind="load_change", description="bus 3 to 50 MW", params={"bus": 3})
    assert m.params["bus"] == 3
    assert m.timestamp
