"""Case registry: the paper's five IEEE systems plus user registration.

``load_case`` accepts the many spellings that show up in conversation
("IEEE 118", "case118", "the 118-bus system") and always returns a *fresh
copy*, so agent-side mutations never leak between sessions.  Table 2 of
the paper is reproduced by :func:`case_inventory`.

Synthetic cases are expensive to calibrate (the 300-bus system runs
repeated N-1 sweeps during generation), so calibrated snapshots are
shipped as JSON under ``cases/data/`` — regenerate them with
``python scripts/generate_cases.py`` after changing the generator.  When a
snapshot is missing the registry falls back to live generation, so the
two paths always produce the same network (both are seeded by case name).
"""

from __future__ import annotations

import re
from collections.abc import Callable
from functools import lru_cache
from pathlib import Path

from ..network import Network
from . import ieee14
from .synthetic import build_synthetic

_DATA_DIR = Path(__file__).parent / "data"

# Component counts from the paper's Table 2 (bus, gen, load, line, trafo).
TABLE2_COUNTS: dict[str, tuple[int, int, int, int, int]] = {
    "ieee14": (14, 5, 11, 17, 3),
    "ieee30": (30, 6, 21, 41, 4),
    "ieee57": (57, 7, 42, 63, 17),
    "ieee118": (118, 54, 99, 175, 11),
    "ieee300": (300, 68, 193, 283, 128),
}

# Mean bus load chosen so the synthetic systems land near realistic total
# demand for their scale (case118 ~4.2 GW, case300 ~20+ GW pre-calibration).
_MEAN_LOAD_MW = {
    "ieee30": 14.0,
    "ieee57": 30.0,
    "ieee118": 43.0,
    "ieee300": 60.0,
}

_BUILDERS: dict[str, Callable[[], Network]] = {}


def register_case(name: str, builder: Callable[[], Network]) -> None:
    """Add (or override) a named case builder."""
    _BUILDERS[name.lower()] = builder


def _synthetic_builder(name: str) -> Callable[[], Network]:
    nb, ng, nl, nline, ntr = TABLE2_COUNTS[name]

    def build() -> Network:
        snapshot = _DATA_DIR / f"{name}.json"
        if snapshot.exists():
            from ..io import load_json

            return load_json(snapshot)
        return generate_synthetic_case(name)

    build.__name__ = f"build_{name}"
    return build


def generate_synthetic_case(name: str, max_seed_tries: int = 5) -> Network:
    """Run the full (slow) calibrated generation for a paper case.

    Case *design* includes a deterministic seed search: a topology draw
    that resists calibration (e.g. an interior-point-hostile reactive
    profile) is discarded and the next seed tried — planners iterate on
    designs too.  The search order is fixed, so output stays reproducible.
    """
    import zlib

    nb, ng, nl, nline, ntr = TABLE2_COUNTS[name]
    base_seed = zlib.crc32(name.encode("utf-8"))
    last_error: Exception | None = None
    for bump in range(max_seed_tries):
        try:
            net = build_synthetic(
                name,
                n_bus=nb,
                n_gen=ng,
                n_load=nl,
                n_line=nline,
                n_trafo=ntr,
                mean_load_mw=_MEAN_LOAD_MW[name],
                seed=base_seed + bump,
            )
            net.metadata.extras["design_seed_bump"] = bump
            return net
        except RuntimeError as exc:
            last_error = exc
    raise RuntimeError(
        f"could not design a calibrated {name} in {max_seed_tries} seed tries"
    ) from last_error


register_case("ieee14", ieee14.build)
for _name in ("ieee30", "ieee57", "ieee118", "ieee300"):
    register_case(_name, _synthetic_builder(_name))


@lru_cache(maxsize=None)
def _cached_master(name: str) -> Network:
    return _BUILDERS[name]()


def canonical_case_name(text: str) -> str | None:
    """Map free-form case mentions onto a registry key.

    Handles "IEEE 118", "case118", "118-bus", "the 118 bus system", and
    the bare number.  Returns ``None`` when nothing matches.
    """
    lowered = text.lower().strip()
    if lowered in _BUILDERS:
        return lowered
    m = re.search(r"(?:ieee|case)?[\s_\-]*(\d+)(?:[\s\-]*bus)?", lowered)
    if m:
        candidate = f"ieee{m.group(1)}"
        if candidate in _BUILDERS:
            return candidate
    return None


def available_cases() -> list[str]:
    """Registered case names, smallest system first."""
    return sorted(_BUILDERS, key=lambda n: (len(n), n))


def load_case(name: str) -> Network:
    """Return a fresh, independently mutable copy of a registered case."""
    key = canonical_case_name(name)
    if key is None:
        raise KeyError(
            f"unknown case {name!r}; available: {', '.join(available_cases())}"
        )
    return _cached_master(key).copy()


def case_inventory() -> list[dict]:
    """Component counts for every registered paper case (Table 2)."""
    return [load_case(name).summary() for name in TABLE2_COUNTS]
