"""Batched DC physics kernels: one factorization, many solves.

The scaling layers above this module (streaming runner, shared executor,
telemetry watch) all multiply whatever one scenario costs, and for the
linear analyses that cost used to be dominated by redundant work: every
``solve_dc`` call re-built and re-factorized ``Bbus``, every
``compute_ptdf`` ran its own ``splu``, and a chunk of load-perturbation
scenarios — mathematically one factorized system against a stacked
right-hand-side matrix — was solved one column at a time.

:class:`DcKernel` owns the sparse LU of ``Bbus[keep, keep]`` for one
*electrical topology* (incidence, impedances, taps, shifts, bus types —
everything except injections) and exposes:

* :meth:`solve_one` — one injection vector in, angles/flows/loadings out
  (what :func:`repro.powerflow.dc.solve_dc` now runs on),
* :meth:`solve_many` — an ``(n_scenarios, n_bus)`` stacked-injection
  matrix in, the whole batch out via one multi-RHS ``lu.solve`` with
  vectorized loading checks,
* :meth:`ptdf` / :meth:`ptdf_row` — the PTDF matrix (or a single branch
  row) through the *same* LU, so factor computation and screening never
  pay a second factorization.

Bit-identity is a hard contract here, not an aspiration: SuperLU's
multi-RHS triangular solve processes columns independently in the same
order as single-RHS solves, and every surrounding operation (RHS
assembly, flow recovery, loading checks) is written so the batched path
performs the exact same floating-point operations per scenario as N
scalar calls.  The test suite asserts equality with ``==``, not
``allclose``.
"""

from __future__ import annotations

import hashlib

import numpy as np
from scipy.sparse import linalg as sla

from ..grid.network import Network, NetworkArrays
from ..grid.ybus import build_b_matrices


def topology_digest(arr: NetworkArrays) -> bytes:
    """Digest of everything the DC factorization depends on.

    Covers incidence, impedances, taps, shifts, and bus types but *not*
    loads or dispatch — so a load-perturbation ensemble maps onto one
    digest and therefore one factorization.  (This is the cache scheme
    ``_WorkerState.factors_for`` introduced; it now lives here so the
    kernel, factor, and worker caches all key the same way.)
    """
    return hashlib.blake2b(
        b"".join(
            (
                arr.branch_ids.tobytes(),
                arr.f_bus.tobytes(),
                arr.t_bus.tobytes(),
                arr.r.tobytes(),
                arr.x.tobytes(),
                arr.tap.tobytes(),
                arr.shift.tobytes(),
                arr.bus_type.tobytes(),
            )
        ),
        digest_size=16,
    ).digest()


def dc_injections(arr: NetworkArrays) -> np.ndarray:
    """Real scheduled bus injections P = Cg pg - pd (p.u.).

    Bit-identical to ``bus_power_injections(arr).real``: complex addition
    is componentwise, so negating ``pd`` and accumulating ``pg0`` in row
    order reproduces the real part exactly.
    """
    p = -arr.pd
    np.add.at(p, arr.gen_bus, arr.pg0)
    return p


class DcBatch:
    """Stacked DC solution: row ``i`` is scenario ``i`` of the batch."""

    __slots__ = ("theta", "p_flow", "loading_percent")

    def __init__(
        self, theta: np.ndarray, p_flow: np.ndarray, loading_percent: np.ndarray
    ) -> None:
        self.theta = theta  # (n, n_bus) rad
        self.p_flow = p_flow  # (n, n_branch) p.u., from->to
        self.loading_percent = loading_percent  # (n, n_branch)

    @property
    def n_scenarios(self) -> int:
        return self.theta.shape[0]

    def flows_mw(self, base_mva: float) -> np.ndarray:
        return self.p_flow * base_mva


class DcSolution:
    """One DC solution (the single-injection view of :class:`DcBatch`)."""

    __slots__ = ("theta", "p_flow", "loading_percent")

    def __init__(
        self, theta: np.ndarray, p_flow: np.ndarray, loading_percent: np.ndarray
    ) -> None:
        self.theta = theta  # (n_bus,) rad
        self.p_flow = p_flow  # (n_branch,) p.u.
        self.loading_percent = loading_percent


class DcKernel:
    """Compiled DC model for one electrical topology.

    Construction pays the one-off costs (B matrices, sparse LU of the
    reduced ``Bbus``); every solve afterwards is a triangular
    substitution.  The kernel holds the compiled snapshot it was built
    from (``arr``) for its topology-side arrays (``rate_a``,
    ``branch_ids``, ``base_mva``) — injections are supplied per solve,
    so one kernel serves every load level of its topology.
    """

    def __init__(self, arr: NetworkArrays) -> None:
        self.arr = arr
        bbus, bf, pf_shift = build_b_matrices(arr)
        self.bf = bf
        self.pf_shift = pf_shift
        self.slack = int(arr.slack_buses[0])
        self.keep = np.flatnonzero(np.arange(arr.n_bus) != self.slack)
        self.va_slack = float(arr.va0[self.slack])
        self.lu = sla.splu(bbus[np.ix_(self.keep, self.keep)].tocsc())
        # Slack coupling term, folded into every RHS: Bbus[keep, slack] * theta_s.
        self._slack_term = (
            bbus[np.ix_(self.keep, [self.slack])].toarray().ravel() * self.va_slack
        )
        # Phase-shift injections moved to buses: Cft' * pf_shift.
        p_bus_shift = np.zeros(arr.n_bus)
        np.add.at(p_bus_shift, arr.f_bus, pf_shift)
        np.add.at(p_bus_shift, arr.t_bus, -pf_shift)
        self.p_bus_shift = p_bus_shift
        self._ptdf: np.ndarray | None = None
        #: Fast-path accounting: multi-RHS solve calls and rows solved.
        self.n_batch_solves = 0
        self.n_batch_rows = 0

    @classmethod
    def from_network(cls, net: Network) -> "DcKernel":
        return cls(net.compile())

    # ------------------------------------------------------------------
    # solves
    # ------------------------------------------------------------------
    def _angles(self, rhs_t: np.ndarray) -> np.ndarray:
        """Reduced-system solve; accepts (n_keep,) or (n_keep, n)."""
        return self.lu.solve(rhs_t)

    def solve_one(self, p_inj: np.ndarray) -> DcSolution:
        """Solve ``Bbus theta = P`` for one injection vector (p.u.)."""
        arr = self.arr
        theta = np.zeros(arr.n_bus)
        theta[self.slack] = self.va_slack
        rhs = (p_inj - self.p_bus_shift)[self.keep] - self._slack_term
        theta[self.keep] = self._angles(rhs)
        p_flow = self.bf @ theta + self.pf_shift
        return DcSolution(theta, p_flow, self._loading(p_flow))

    def solve_many(self, p_inj: np.ndarray) -> DcBatch:
        """Solve the whole ``(n_scenarios, n_bus)`` stack in one LU pass.

        One multi-RHS triangular solve replaces N factor-and-solve round
        trips; flows come back through the same CSR multi-vector product
        the scalar path uses, so row ``i`` is bit-identical to
        ``solve_one(p_inj[i])``.
        """
        p = np.atleast_2d(np.asarray(p_inj, dtype=float))
        n = p.shape[0]
        arr = self.arr
        rhs = (p - self.p_bus_shift[np.newaxis, :])[:, self.keep] - self._slack_term[
            np.newaxis, :
        ]
        theta = np.zeros((n, arr.n_bus))
        theta[:, self.slack] = self.va_slack
        theta[:, self.keep] = self._angles(np.ascontiguousarray(rhs.T)).T
        # (n_branch, n) multivector product == per-column matvec arithmetic.
        p_flow = (self.bf @ theta.T + self.pf_shift[:, np.newaxis]).T
        self.n_batch_solves += 1
        self.n_batch_rows += n
        return DcBatch(theta, p_flow, self._loading(p_flow))

    def _loading(self, p_flow: np.ndarray) -> np.ndarray:
        """Loading %% vs ``rate_a``; broadcasts over stacked flow rows."""
        rate = self.arr.rate_a
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(rate > 0, 100.0 * np.abs(p_flow) / rate, 0.0)

    # ------------------------------------------------------------------
    # sensitivities (PTDF through the same LU)
    # ------------------------------------------------------------------
    def ptdf(self) -> np.ndarray:
        """Dense PTDF matrix w.r.t. the slack, cached on the kernel."""
        if self._ptdf is None:
            arr = self.arr
            # Solve Bbus[keep,keep]^T X = Bf[:,keep]^T -> PTDF = X^T (Bbus
            # is symmetric, so the factorization above serves directly).
            rhs = np.asarray(self.bf[:, self.keep].todense()).T
            sol = self._angles(rhs)
            ptdf = np.zeros((arr.n_branch, arr.n_bus))
            ptdf[:, self.keep] = sol.T
            self._ptdf = ptdf
        return self._ptdf

    def ptdf_row(self, row: int) -> np.ndarray:
        """One PTDF row (dFlow/dInjection for branch ``row``) — a single
        RHS solve instead of the full dense matrix."""
        arr = self.arr
        if not 0 <= row < arr.n_branch:
            raise IndexError(
                f"branch row {row} out of range (kernel has {arr.n_branch})"
            )
        if self._ptdf is not None:
            return self._ptdf[row].copy()
        rhs = np.asarray(self.bf[row, self.keep].todense()).ravel()
        out = np.zeros(arr.n_bus)
        out[self.keep] = self._angles(rhs)
        return out
