#!/usr/bin/env python
"""Scenario studies: declarative operating-point ensembles at batch scale.

The what-if loop from ``whatif_load_study.py`` asked one question per
solve; the scenario engine asks hundreds at once.  This example runs the
acceptance workload — a 200-draw Monte Carlo load study on the 118-bus
system — first conversationally (the planner routes the request to the
study agent) and then programmatically against the batch runner,
including the process-parallel path and a contingency-screening study
that tracks which outages stay critical across the ensemble.

Run:  PYTHONPATH=src python examples/scenario_study.py
"""

from __future__ import annotations

import os

from repro import GridMindSession, load_case
from repro.scenarios import (
    BatchStudyRunner,
    load_sweep,
    monte_carlo_ensemble,
)


def conversational_study() -> None:
    print("=" * 70)
    print("Conversational Monte Carlo study (planner -> study agent)")
    print("=" * 70)
    session = GridMindSession(model="gpt-5-mini", seed=7)
    reply = session.ask(
        "Run a 200-draw Monte Carlo load study on the 118-bus case"
    )
    print(reply.text)
    rec = session.last_record
    print(
        f"\n[agents: {', '.join(reply.agents_involved)} | llm "
        f"{rec.latency_virtual_s:.1f}s (simulated) + compute {rec.wall_s:.1f}s]"
    )

    reply = session.ask("What are the results of the study?")
    print("\nfollow-up ->", reply.text.splitlines()[0])


def programmatic_study() -> None:
    print()
    print("=" * 70)
    print("Same ensemble against the batch runner (what the tool executes)")
    print("=" * 70)
    net = load_case("ieee118")
    scenarios = monte_carlo_ensemble(n=200, sigma=0.05, seed=7)

    jobs = min(4, os.cpu_count() or 1)
    serial = BatchStudyRunner(analysis="powerflow", n_jobs=1).run(net, scenarios)
    parallel = BatchStudyRunner(analysis="powerflow", n_jobs=jobs).run(net, scenarios)
    assert serial.aggregate().to_dict() == parallel.aggregate().to_dict()

    agg = serial.aggregate()
    print(f"scenarios: {serial.n_scenarios}  converged: {agg.n_converged}")
    print(f"violation rate: {100.0 * agg.violation_rate:.0f}% of scenarios")
    loading = agg.loading_stats
    print(
        f"peak loading %: p50 {loading['p50']:.1f}  p95 {loading['p95']:.1f}  "
        f"max {loading['max']:.1f}"
    )
    print(
        f"wall-clock: serial {serial.runtime_s:.2f}s vs "
        f"{jobs}-worker {parallel.runtime_s:.2f}s "
        f"(speedup x{serial.runtime_s / max(parallel.runtime_s, 1e-9):.2f})"
    )


def screening_stability_study() -> None:
    print()
    print("=" * 70)
    print("Which contingencies stay critical across a load sweep? (ieee57)")
    print("=" * 70)
    net = load_case("ieee57")
    study = BatchStudyRunner(analysis="screening", ac_budget=15, top_n=5).run(
        net, load_sweep(0.8, 1.2, 9)
    )
    agg = study.aggregate()
    print(f"{'branch':>8s} {'in top-5 (% of scenarios)':>28s}")
    for branch, freq in list(agg.rank_stability.items())[:8]:
        print(f"{branch:>8d} {100.0 * freq:>27.0f}%")
    print(f"\nstable critical set (>=50%): {agg.stable_critical}")


if __name__ == "__main__":
    conversational_study()
    programmatic_study()
    screening_stability_study()
