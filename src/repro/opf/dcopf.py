"""DC Optimal Power Flow as a linear program.

The classic lossless LP baseline: quadratic costs are piecewise-linearised
(convexity makes the epigraph formulation exact at the segment knots) and
the whole problem handed to scipy's HiGHS.  Used as the economic baseline
in the ablation benchmarks and as the feasibility oracle during synthetic
case design.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize, sparse

from ..grid.network import Network
from ..grid.units import rad_to_deg
from ..grid.ybus import build_b_matrices
from ..instrumentation.probes import instrument_solver
from .result import OPFResult

_SEGMENTS = 8


@instrument_solver("dcopf")
def solve_dcopf(net: Network, *, segments: int = _SEGMENTS) -> OPFResult:
    """Solve the DCOPF LP.  Variables: [theta | pg | cost epigraph y]."""
    start = time.perf_counter()
    arr = net.compile()
    nb, ng, nl = arr.n_bus, arr.n_gen, arr.n_branch
    base = arr.base_mva

    bbus, bf, pf_shift = build_b_matrices(arr)
    p_bus_shift = np.zeros(nb)
    np.add.at(p_bus_shift, arr.f_bus, pf_shift)
    np.add.at(p_bus_shift, arr.t_bus, -pf_shift)

    cg = arr.gen_connection_matrix()

    n_var = nb + ng + ng
    c = np.zeros(n_var)
    c[nb + ng :] = 1.0  # minimise sum of epigraph variables

    # Equality: Bbus theta - Cg pg = -Pd - Pshift
    a_eq = sparse.hstack(
        [bbus, -cg, sparse.csr_matrix((nb, ng))], format="csr"
    )
    b_eq = -(arr.pd + p_bus_shift)

    rows_ub = []
    rhs_ub = []

    # Rated branch flows: |Bf theta + pf_shift| <= rate.
    rated = np.flatnonzero(arr.rate_a > 0)
    if rated.size:
        bf_r = bf[rated]
        pad = sparse.csr_matrix((rated.size, 2 * ng))
        rows_ub.append(sparse.hstack([bf_r, pad]))
        rhs_ub.append(arr.rate_a[rated] - pf_shift[rated])
        rows_ub.append(sparse.hstack([-bf_r, pad]))
        rhs_ub.append(arr.rate_a[rated] + pf_shift[rated])

    # Cost epigraph: y_i >= slope*pg_i + intercept for each segment.
    seg_rows = []
    seg_rhs = []
    for i in range(ng):
        gen = net.gens[int(arr.gen_ids[i])]
        lo, hi = arr.pmin[i], arr.pmax[i]
        knots = np.linspace(lo, hi, segments + 1)
        if hi - lo < 1e-12:
            knots = np.array([lo, lo + 1e-6])
        for k in range(len(knots) - 1):
            p0, p1 = knots[k], knots[k + 1]
            c0 = gen.cost_at(p0 * base)
            c1 = gen.cost_at(p1 * base)
            slope = (c1 - c0) / (p1 - p0)
            intercept = c0 - slope * p0
            # slope*pg - y <= -intercept
            row = sparse.lil_matrix((1, n_var))
            row[0, nb + i] = slope
            row[0, nb + ng + i] = -1.0
            seg_rows.append(row.tocsr())
            seg_rhs.append(-intercept)
    rows_ub.extend(seg_rows)
    rhs_ub.extend(np.atleast_1d(r) for r in seg_rhs)

    a_ub = sparse.vstack(rows_ub, format="csr")
    b_ub = np.concatenate([np.atleast_1d(r) for r in rhs_ub])

    ref = int(arr.slack_buses[0])
    bounds = (
        [(None, None) if i != ref else (arr.va0[ref], arr.va0[ref]) for i in range(nb)]
        + [(arr.pmin[i], arr.pmax[i]) for i in range(ng)]
        + [(None, None)] * ng
    )

    lp = optimize.linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )

    runtime = time.perf_counter() - start
    if not lp.success:
        return _failed_result(arr, runtime, f"DCOPF infeasible: {lp.message}")

    theta = lp.x[:nb]
    pg = lp.x[nb : nb + ng]
    flows = bf @ theta + pf_shift
    with np.errstate(divide="ignore", invalid="ignore"):
        loading = np.where(arr.rate_a > 0, 100.0 * np.abs(flows) / arr.rate_a, 0.0)

    # Exact polynomial cost at the LP dispatch (reported objective).
    true_cost = sum(
        net.gens[int(arr.gen_ids[i])].cost_at(pg[i] * base) for i in range(ng)
    )
    lmp = -lp.eqlin.marginals / base if hasattr(lp, "eqlin") else np.zeros(nb)

    return OPFResult(
        converged=True,
        objective_cost=float(true_cost),
        method="dcopf-lp",
        iterations=int(lp.nit) if hasattr(lp, "nit") else 0,
        vm=np.ones(nb),
        va_deg=rad_to_deg(theta),
        pg_mw=pg * base,
        qg_mvar=np.zeros(ng),
        gen_ids=arr.gen_ids.copy(),
        loading_percent=loading,
        s_from_mva=np.abs(flows) * base,
        s_to_mva=np.abs(flows) * base,
        branch_ids=arr.branch_ids.copy(),
        losses_mw=0.0,
        lmp_mw=lmp,
        branch_mu=np.zeros(nl),
        max_power_balance_mismatch_pu=float(np.max(np.abs(a_eq @ lp.x - b_eq))),
        runtime_s=runtime,
        message=f"piecewise-linear LP ({segments} segments/gen)",
        extras={"lp_objective": float(lp.fun)},
    )


def _failed_result(arr, runtime: float, message: str) -> OPFResult:
    nb, ng, nl = arr.n_bus, arr.n_gen, arr.n_branch
    return OPFResult(
        converged=False,
        objective_cost=float("nan"),
        method="dcopf-lp",
        iterations=0,
        vm=np.ones(nb),
        va_deg=np.zeros(nb),
        pg_mw=np.zeros(ng),
        qg_mvar=np.zeros(ng),
        gen_ids=arr.gen_ids.copy(),
        loading_percent=np.zeros(nl),
        s_from_mva=np.zeros(nl),
        s_to_mva=np.zeros(nl),
        branch_ids=arr.branch_ids.copy(),
        losses_mw=0.0,
        lmp_mw=np.zeros(nb),
        branch_mu=np.zeros(nl),
        max_power_balance_mismatch_pu=float("inf"),
        runtime_s=runtime,
        message=message,
    )
