"""Dimensional (tag-sliced) study analytics, end to end.

Covers the sliced-aggregation vertical: the :class:`SlicedReducer`'s
grouping and bounded-cardinality overflow, bit-identical per-slice
aggregates across serial / pooled / streamed execution, correlated
zonal Monte Carlo draws (PSD validation, prefix-stable determinism,
``hot_zone`` tagging), the store's aggregate-index sidecars (index-only
``compare``/``latest_summary``, ``verify`` staleness reporting and
rebuild, ``prune`` cleanup), and the conversational surface (NLU
``slice_by`` extraction, sliced narration, the service API, the CLI).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenarios import (
    BatchStudyRunner,
    OTHER_SLICE,
    Scenario,
    SlicedReducer,
    SliceSpec,
    StudyReducer,
    ZonalLoadScale,
    aggregate_study,
    daily_profile,
    default_slice_by,
    load_sweep,
    monte_carlo_ensemble,
    resolve_slice_by,
    slice_key,
    uniform_correlation,
)
from repro.scenarios.runner import ScenarioResult
from repro.service import StudyExecutor
from repro.service.store import ResultStore


def synth_results(n: int, *, tag: str = "hour_of_day", n_values: int = 24):
    """Deterministic synthetic per-scenario records with a slice tag."""
    out = []
    for i in range(n):
        value = i % n_values
        out.append(
            ScenarioResult(
                name=f"s{i:05d}",
                tags={"family": "profile", tag: value, "index": i},
                converged=True,
                objective_cost=1000.0 + 10.0 * value + 0.1 * i,
                max_loading_percent=50.0 + value + (i % 7),
                min_voltage_pu=1.0 - 0.001 * value,
                n_voltage_violations=1 if value >= 18 else 0,
            )
        )
    return out


# ----------------------------------------------------------------------
# SliceSpec and slice keys
# ----------------------------------------------------------------------


class TestSliceSpec:
    def test_validates_cardinality_cap(self):
        with pytest.raises(ValueError, match="cardinality cap"):
            SliceSpec(by=("hour",), max_values=0)

    def test_rejects_duplicate_dimensions(self):
        with pytest.raises(ValueError, match="duplicate"):
            SliceSpec(by=("hour", "hour"))

    def test_rejects_empty_dimension_names(self):
        with pytest.raises(ValueError, match="non-empty"):
            SliceSpec(by=("",))

    def test_rejects_bare_string_dimensions(self):
        # tuple("scale") would mean five one-letter dimensions.
        with pytest.raises(ValueError, match="did you mean"):
            SliceSpec(by="scale")

    def test_runner_parses_string_slice_by(self, case14):
        study = BatchStudyRunner(
            analysis="powerflow", slice_by="hour, zone"
        ).run(case14, daily_profile(steps=6))
        assert list(study.aggregate().slices) == ["hour_of_day", "hot_zone"]

    def test_truthiness_tracks_dimensions(self):
        assert not SliceSpec()
        assert SliceSpec(by=("scale",))

    def test_slice_key_formats(self):
        assert slice_key(3) == "3"
        assert slice_key("peak") == "peak"
        assert slice_key(0.8) == "0.8"
        # %g keeps linspace artefacts readable and stable.
        assert slice_key(0.8500000000000001) == "0.85"


class TestResolveSliceBy:
    def test_none_infers_from_family(self):
        assert resolve_slice_by(None, "profile") == ("hour_of_day",)
        assert resolve_slice_by(None, "daily_profile") == ("hour_of_day",)
        assert resolve_slice_by(None, "sweep") == ("scale",)
        assert resolve_slice_by(None, "monte_carlo") == ()

    def test_explicit_none_disables(self):
        assert resolve_slice_by("none", "profile") == ()
        assert resolve_slice_by([], "profile") == ()

    def test_aliases_and_comma_lists(self):
        assert resolve_slice_by("hour", "monte_carlo") == ("hour_of_day",)
        assert resolve_slice_by("zone, scale") == ("hot_zone", "scale")
        assert resolve_slice_by(["hour", "hour"]) == ("hour_of_day",)

    def test_default_slice_by_unknown_family_is_empty(self):
        assert default_slice_by("outage") == ()
        assert default_slice_by("nonsense") == ()

    def test_zonal_monte_carlo_implies_hot_zone(self):
        assert default_slice_by("monte_carlo", n_zones=4) == ("hot_zone",)
        assert default_slice_by("monte_carlo", n_zones=0) == ()
        assert default_slice_by("outage", n_zones=4) == ()
        assert resolve_slice_by(None, "monte_carlo", n_zones=3) == ("hot_zone",)
        # An explicit request always wins over the zone inference.
        assert resolve_slice_by("none", "monte_carlo", n_zones=3) == ()

    def test_expand_rejects_more_zones_than_buses(self, case14):
        from repro.scenarios import expand_study_kind

        with pytest.raises(ValueError, match="at least one bus"):
            expand_study_kind(
                "monte_carlo", case14, n_scenarios=4, n_zones=case14.n_bus + 1
            )


# ----------------------------------------------------------------------
# SlicedReducer semantics
# ----------------------------------------------------------------------


class TestSlicedReducer:
    def test_empty_spec_degenerates_to_global_reducer(self):
        results = synth_results(100)
        sliced = SlicedReducer()
        plain = StudyReducer()
        sliced.add_many(results)
        plain.add_many(results)
        assert sliced.result().to_dict() == plain.result().to_dict()
        assert "slices" not in sliced.result().to_dict()

    def test_cells_match_manual_groupby(self):
        results = synth_results(200)
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day",)))
        sliced.add_many(results)
        block = sliced.result().slices["hour_of_day"]
        assert block["n_cells"] == 24
        assert block["n_unsliced"] == 0
        assert block["n_overflow_values"] == 0
        for cell in block["cells"]:
            value = int(cell["value"])
            subset = [r for r in results if r.tags["hour_of_day"] == value]
            expected = aggregate_study(subset)
            assert cell["n"] == expected.n_scenarios
            assert cell["n_converged"] == expected.n_converged
            assert cell["violation_rate"] == round(expected.violation_rate, 4)
            assert cell["cost_stats"] == expected.cost_stats
            assert cell["loading_stats"] == expected.loading_stats

    def test_cells_keep_first_seen_order(self):
        results = synth_results(48)
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day",)))
        sliced.add_many(results)
        values = [c["value"] for c in sliced.result().slices["hour_of_day"]["cells"]]
        assert values == [str(v) for v in range(24)]

    def test_cardinality_overflow_folds_into_other(self):
        results = synth_results(100, n_values=50)
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day",), max_values=8))
        sliced.add_many(results)
        block = sliced.result().slices["hour_of_day"]
        values = [c["value"] for c in block["cells"]]
        # First 8 observed values get cells; the other 42 share __other__.
        assert values == [str(v) for v in range(8)] + [OTHER_SLICE]
        assert block["n_overflow_values"] == 42
        assert sum(c["n"] for c in block["cells"]) == 100
        other = block["cells"][-1]
        assert other["n"] == sum(1 for r in results if r.tags["hour_of_day"] >= 8)

    def test_overflow_value_tracking_is_bounded(self):
        from repro.scenarios import aggregate as agg_mod

        # Slicing by an unbounded tag (the draw index) must not grow the
        # reducer with the ensemble: the distinct-overflow diagnostic
        # saturates at its cap instead.
        results = synth_results(agg_mod.OVERFLOW_VALUE_TRACK_CAP + 200, tag="draw",
                                n_values=agg_mod.OVERFLOW_VALUE_TRACK_CAP + 200)
        sliced = SlicedReducer(SliceSpec(by=("draw",), max_values=8))
        sliced.add_many(results)
        block = sliced.result().slices["draw"]
        assert block["n_overflow_values"] == agg_mod.OVERFLOW_VALUE_TRACK_CAP
        assert block["overflow_values_saturated"] is True
        assert len(sliced._overflow["draw"]) == agg_mod.OVERFLOW_VALUE_TRACK_CAP

    def test_overflow_split_is_deterministic(self):
        results = synth_results(150, n_values=40)
        dicts = []
        for _ in range(2):
            sliced = SlicedReducer(SliceSpec(by=("hour_of_day",), max_values=5))
            sliced.add_many(results)
            dicts.append(sliced.result().to_dict())
        assert dicts[0] == dicts[1]

    def test_missing_tag_counts_as_unsliced(self):
        results = synth_results(10)
        for r in results[:4]:
            del r.tags["hour_of_day"]
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day",)))
        sliced.add_many(results)
        block = sliced.result().slices["hour_of_day"]
        assert block["n_unsliced"] == 4
        assert sum(c["n"] for c in block["cells"]) == 6
        # The global aggregate still sees every result.
        assert sliced.result().n_scenarios == 10

    def test_multiple_dimensions(self):
        results = synth_results(60)
        for r in results:
            r.tags["parity"] = r.tags["index"] % 2
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day", "parity")))
        sliced.add_many(results)
        slices = sliced.result().slices
        assert set(slices) == {"hour_of_day", "parity"}
        assert slices["parity"]["n_cells"] == 2

    def test_aggregate_study_slice_spec_wrapper(self):
        results = synth_results(80)
        sliced = SlicedReducer(SliceSpec(by=("hour_of_day",)))
        sliced.add_many(results)
        agg = aggregate_study(results, slice_spec=SliceSpec(by=("hour_of_day",)))
        assert agg.to_dict() == sliced.result().to_dict()


# ----------------------------------------------------------------------
# execution-path identity (the tentpole acceptance property)
# ----------------------------------------------------------------------


class TestSliceExecutionIdentity:
    def test_serial_pooled_streamed_bit_identical(self, case14):
        scenarios = daily_profile(steps=36)
        kwargs = dict(analysis="powerflow", slice_by=("hour_of_day",))
        serial = BatchStudyRunner(n_jobs=1, **kwargs).run(case14, scenarios)
        pooled = BatchStudyRunner(n_jobs=2, **kwargs).run(case14, scenarios)
        streamed = BatchStudyRunner(n_jobs=2, **kwargs).run(
            case14, scenarios, keep_results=False
        )
        agg_serial = serial.aggregate().to_dict()
        assert agg_serial == pooled.aggregate().to_dict()
        assert agg_serial == streamed.aggregate().to_dict()
        assert list(agg_serial["slices"]) == ["hour_of_day"]
        assert agg_serial["slices"]["hour_of_day"]["n_cells"] == 24
        # JSON round-trip equality (what the store index persists).
        assert json.loads(json.dumps(agg_serial)) == json.loads(
            json.dumps(streamed.aggregate().to_dict())
        )

    def test_shared_executor_matches_serial(self, case14):
        scenarios = load_sweep(0.9, 1.1, 12)
        kwargs = dict(analysis="powerflow", slice_by=("scale",))
        serial = BatchStudyRunner(**kwargs).run(case14, scenarios)
        with StudyExecutor(max_workers=2) as executor:
            shared = BatchStudyRunner(executor=executor, **kwargs).run(
                case14, scenarios, keep_results=False
            )
        assert serial.aggregate().to_dict() == shared.aggregate().to_dict()

    def test_streamed_slices_keep_residency_bounded(self, case14):
        scenarios = daily_profile(steps=120)
        study = BatchStudyRunner(
            analysis="powerflow",
            n_jobs=1,
            chunk_size=10,
            worst_k=5,
            slice_by=("hour_of_day",),
        ).run(case14, scenarios, keep_results=False)
        assert study.results == []
        assert study.peak_resident_results <= 10 + 5
        assert study.aggregate().slices["hour_of_day"]["n_cells"] == 24

    def test_kept_results_reaggregate_with_slices(self, case14):
        scenarios = daily_profile(steps=12)
        study = BatchStudyRunner(
            analysis="powerflow", slice_by=("hour_of_day",)
        ).run(case14, scenarios)
        stream_agg = study.aggregate().to_dict()
        # Recompute from the materialised records through the wrapper.
        recomputed = aggregate_study(
            study.results, slice_spec=SliceSpec(by=("hour_of_day",))
        )
        assert recomputed.to_dict() == stream_agg

    def test_invalid_slice_spec_rejected_before_dispatch(self, case14):
        runner = BatchStudyRunner(slice_by=("hour", "hour"))
        with pytest.raises(ValueError, match="duplicate"):
            runner.config()


# ----------------------------------------------------------------------
# correlated Monte Carlo draws
# ----------------------------------------------------------------------


class TestCorrelatedMonteCarlo:
    def test_uniform_correlation_shape(self):
        corr = uniform_correlation(3, 0.5)
        assert corr == [[1.0, 0.5, 0.5], [0.5, 1.0, 0.5], [0.5, 0.5, 1.0]]

    def test_rejects_non_psd_matrix(self):
        with pytest.raises(ValueError, match="positive semi-definite"):
            monte_carlo_ensemble(n=4, correlation=[[1.0, 2.0], [2.0, 1.0]])

    def test_rejects_asymmetric_and_bad_diagonal(self):
        with pytest.raises(ValueError, match="symmetric"):
            monte_carlo_ensemble(n=4, correlation=[[1.0, 0.2], [0.4, 1.0]])
        with pytest.raises(ValueError, match="unit diagonal"):
            monte_carlo_ensemble(n=4, correlation=[[2.0, 0.0], [0.0, 2.0]])
        with pytest.raises(ValueError, match="square"):
            monte_carlo_ensemble(n=4, correlation=[[1.0, 0.0]])

    def test_singular_psd_matrix_accepted(self):
        # Perfectly correlated zones: PSD but singular.
        stream = monte_carlo_ensemble(n=3, correlation=uniform_correlation(3, 1.0))
        for s in stream:
            factors = s.perturbations[0].factors
            assert max(factors) == pytest.approx(min(factors))

    def test_draws_are_prefix_stable_and_deterministic(self):
        corr = uniform_correlation(4, 0.6)
        small = list(monte_carlo_ensemble(n=5, sigma=0.1, seed=9, correlation=corr))
        large = list(monte_carlo_ensemble(n=40, sigma=0.1, seed=9, correlation=corr))
        for a, b in zip(small, large):
            assert a.perturbations == b.perturbations
            assert a.tags == b.tags
        again = list(monte_carlo_ensemble(n=5, sigma=0.1, seed=9, correlation=corr))
        assert [s.perturbations for s in again] == [s.perturbations for s in small]

    def test_tags_carry_zone_coordinates(self):
        stream = monte_carlo_ensemble(
            n=6, sigma=0.2, seed=1, correlation=uniform_correlation(3, 0.4)
        )
        for s in stream:
            factors = s.perturbations[0].factors
            assert len(factors) == 3
            assert s.tags["n_zones"] == 3
            assert s.tags["hot_zone"] == int(np.argmax(factors))

    def test_zonal_scale_partitions_buses(self, case14):
        pert = ZonalLoadScale(factors=(2.0, 0.5))
        net = Scenario(name="z", perturbations=(pert,)).realize(case14)
        half = case14.n_bus / 2
        for before, after in zip(case14.loads, net.loads):
            factor = 2.0 if before.bus < half else 0.5
            assert after.pd_mw == pytest.approx(before.pd_mw * factor)

    def test_zonal_scale_rejects_negative_factor(self, case14):
        from repro.scenarios import ScenarioError

        with pytest.raises(ScenarioError, match=">= 0"):
            Scenario(
                name="bad", perturbations=(ZonalLoadScale(factors=(-1.0,)),)
            ).realize(case14)

    def test_correlated_study_slices_by_hot_zone(self, case14):
        scenarios = monte_carlo_ensemble(
            n=30, sigma=0.15, seed=3, correlation=uniform_correlation(4, 0.3)
        )
        study = BatchStudyRunner(
            analysis="powerflow", slice_by=("hot_zone",)
        ).run(case14, scenarios)
        block = study.aggregate().slices["hot_zone"]
        assert 1 <= block["n_cells"] <= 4
        assert sum(c["n"] for c in block["cells"]) == 30

    def test_correlation_changes_draws(self):
        base = list(monte_carlo_ensemble(n=3, sigma=0.1, seed=0))
        corr = list(
            monte_carlo_ensemble(
                n=3, sigma=0.1, seed=0, correlation=uniform_correlation(2, 0.9)
            )
        )
        assert all(
            type(a.perturbations[0]) is not type(b.perturbations[0])
            for a, b in zip(base, corr)
        )


class TestProfileHourTags:
    def test_hourly_steps_tag_each_hour(self):
        tags = [s.tags for s in daily_profile(steps=24)]
        assert [t["hour_of_day"] for t in tags] == list(range(24))

    def test_subhourly_steps_bucket_into_24_hours(self):
        tags = [s.tags["hour_of_day"] for s in daily_profile(steps=96)]
        assert set(tags) == set(range(24))
        assert all(tags.count(h) == 4 for h in range(24))


# ----------------------------------------------------------------------
# store: aggregate-index sidecars
# ----------------------------------------------------------------------


@pytest.fixture
def sliced_store(tmp_path, case14):
    """A store holding two sliced daily-profile studies."""
    store = ResultStore(tmp_path / "store")
    runner = BatchStudyRunner(analysis="powerflow", slice_by=("hour_of_day",))
    keys = []
    for label, trough in (("day1", 0.65), ("day2", 0.75)):
        scenarios = daily_profile(steps=30, trough=trough)
        study = runner.run(case14, scenarios)
        keys.append(
            store.put(
                case14,
                runner.config(),
                list(scenarios),
                study,
                study_kind="profile",
                label=label,
            )
        )
    return store, keys


class TestAggregateIndexSidecars:
    def test_put_writes_index_sidecar(self, sliced_store):
        store, keys = sliced_store
        for key in keys:
            index = json.loads(store._index_path(key).read_text())
            assert index["format"] == "gridmind-study-index-v1"
            assert index["key"] == key
            assert index["aggregate"]["slices"]["hour_of_day"]["n_cells"] == 24
            assert len(index["worst_scenarios"]) == 5

    def test_index_matches_payload_aggregate(self, sliced_store):
        store, keys = sliced_store
        index = store.aggregate_index(keys[0])
        rebuilt = store.rebuild_index(keys[0])
        assert index["aggregate"] == rebuilt["aggregate"]
        # And both match re-aggregating the loaded result set.
        assert (
            store.load_result(keys[0]).aggregate().to_dict()
            == index["aggregate"]
        )

    def test_compare_answers_without_reading_payloads(self, sliced_store):
        store, keys = sliced_store
        expected = store.compare(keys[0], keys[1])
        # Destroy every payload: only the meta + index sidecars survive.
        for path in store.root.glob("*.json"):
            path.write_text("NOT JSON")
        cmp = store.compare(keys[0], keys[1])
        assert cmp["aggregate_a"] == expected["aggregate_a"]
        assert cmp["delta"] == expected["delta"]
        assert "slices" in cmp["delta"]
        rows = cmp["delta"]["slices"]["hour_of_day"]
        assert len(rows) == 24
        assert all("violation_rate" in row for row in rows)

    def test_latest_summary_answers_from_index(self, sliced_store):
        store, keys = sliced_store
        expected = store.latest_summary()
        for path in store.root.glob("*.json"):
            path.write_text("NOT JSON")
        summary = store.latest_summary()
        assert summary == expected
        assert summary["study_key"] == keys[1]
        assert summary["aggregate"]["slices"]["hour_of_day"]["n_cells"] == 24
        assert summary["source"] == "result_store"

    def test_missing_index_rebuilt_on_demand(self, sliced_store):
        store, keys = sliced_store
        before = store.aggregate_index(keys[0])
        store._index_path(keys[0]).unlink()
        after = store.aggregate_index(keys[0])
        assert after["aggregate"] == before["aggregate"]
        assert store._index_path(keys[0]).exists()

    def test_verify_reports_missing_and_stale_indexes(self, sliced_store):
        store, keys = sliced_store
        report = store.verify()
        assert report["index_issues"] == []
        store._index_path(keys[0]).unlink()
        index = json.loads(store._index_path(keys[1]).read_text())
        index["results_digest"] = "0" * 16
        store._index_path(keys[1]).write_text(json.dumps(index))
        report = store.verify()
        issues = {i["key"]: i["issue"] for i in report["index_issues"]}
        assert issues == {keys[0]: "missing_index", keys[1]: "stale_index"}
        assert report["n_ok"] == 2  # payloads themselves are healthy

    def test_verify_rebuilds_indexes_on_demand(self, sliced_store):
        store, keys = sliced_store
        store._index_path(keys[0]).unlink()
        store._index_path(keys[1]).write_text("corrupt")
        report = store.verify(rebuild_indexes=True)
        assert report["n_indexes_rebuilt"] == 2
        assert all(i.get("rebuilt") for i in report["index_issues"])
        assert store.verify()["index_issues"] == []

    def test_prune_deletes_index_sidecars(self, sliced_store):
        store, keys = sliced_store
        report = store.prune(max_bytes=0)
        assert report["n_removed"] == 2
        assert list(store.root.glob("*.index")) == []
        assert list(store.root.glob("*.meta")) == []

    def test_orphan_indexes_reported(self, sliced_store):
        store, keys = sliced_store
        store._path(keys[0]).unlink()
        report = store.verify()
        assert report["orphan_indexes"] == [keys[0]]

    def test_predigest_payload_verifies_clean_after_rebuild(self, sliced_store):
        # PR-3-era payloads carry no results_digest; a rebuilt index must
        # verify as healthy, not report stale_index forever.
        store, keys = sliced_store
        for key in keys:
            payload = json.loads(store._path(key).read_text())
            payload.pop("results_digest", None)
            store._write_atomic(store._path(key), json.dumps(payload))
            store._index_path(key).unlink()
        first = store.verify(rebuild_indexes=True)
        assert first["n_indexes_rebuilt"] == 2
        assert store.verify()["index_issues"] == []

    def test_compare_survives_unwritable_store(self, sliced_store, monkeypatch):
        # A store this process cannot write to (foreign-owned, read-only
        # mount) with payloads but no indexes: compare/latest_summary are
        # read paths and must answer from in-memory recomputation.
        store, keys = sliced_store
        expected = store.compare(keys[0], keys[1])
        for key in keys:
            store._index_path(key).unlink()

        def refuse_writes(path, text):
            raise OSError("read-only store")

        monkeypatch.setattr(store, "_write_atomic", refuse_writes)
        cmp = store.compare(keys[0], keys[1])
        assert cmp["delta"] == expected["delta"]
        assert store.latest_summary()["study_key"] == keys[1]
        # verify(rebuild_indexes=True) must surface the failure instead.
        with pytest.raises(OSError, match="read-only"):
            store.verify(rebuild_indexes=True)

    def test_slice_declaration_does_not_fork_store_keys(self, tmp_path, case14):
        # Same physics, different slicing -> one payload, index refreshed
        # with the latest slice spec (slicing shapes the derived index,
        # not the per-scenario results).
        store = ResultStore(tmp_path / "store")
        scenarios = daily_profile(steps=10)
        plain = BatchStudyRunner(analysis="powerflow")
        sliced = BatchStudyRunner(analysis="powerflow", slice_by=("hour_of_day",))
        key_plain = store.put(
            case14, plain.config(), list(scenarios), plain.run(case14, scenarios)
        )
        key_sliced = store.put(
            case14, sliced.config(), list(scenarios), sliced.run(case14, scenarios)
        )
        assert key_plain == key_sliced
        assert len(store.list_studies()) == 1
        index = store.aggregate_index(key_sliced)
        assert index["aggregate"]["slices"]["hour_of_day"]["n_cells"] == 10

    def test_unsliced_legacy_payload_indexes_cleanly(self, tmp_path, case14):
        # A pre-slicing store entry: no index, no slice_by in its config.
        store = ResultStore(tmp_path / "legacy")
        runner = BatchStudyRunner(analysis="powerflow")
        scenarios = load_sweep(0.95, 1.05, 5)
        key = store.put(case14, runner.config(), list(scenarios), runner.run(case14, scenarios))
        store._index_path(key).unlink()
        payload = json.loads(store._path(key).read_text())
        payload["config"].pop("slice_by")
        payload["config"].pop("slice_max_values")
        store._write_atomic(store._path(key), json.dumps(payload))
        index = store.aggregate_index(key)
        assert "slices" not in index["aggregate"]


# ----------------------------------------------------------------------
# conversational + service surfaces
# ----------------------------------------------------------------------


class TestSliceNLU:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("sweep load from 80% to 120% on ieee14 and slice by hour", "hour_of_day"),
            ("run a daily profile study sliced by hour of day on ieee30", "hour_of_day"),
            ("monte carlo study on ieee14 broken down by zone", "hot_zone"),
            ("run a load sweep study per load level on ieee57", "scale"),
            ("run a load study on ieee14 grouped by scale", "scale"),
        ],
    )
    def test_slice_by_extracted(self, text, expected):
        from repro.llm.nlu import Intent, classify

        parsed = classify(text)
        assert parsed.intent is Intent.RUN_STUDY
        assert parsed.entities["slice_by"] == expected

    def test_no_false_positive_on_plain_studies(self):
        from repro.llm.nlu import classify

        parsed = classify("run a 200-draw monte carlo study on ieee118")
        assert "slice_by" not in parsed.entities

    @pytest.mark.parametrize(
        "text",
        [
            "run a monte carlo ensemble on ieee14 and report the cost per hour",
            "run a monte carlo ensemble on ieee14, what are the costs per hour",
            "monte carlo study on ieee14 — what price per hour do we pay",
        ],
    )
    def test_no_false_positive_on_rate_phrasing(self, text):
        from repro.llm.nlu import classify

        assert "slice_by" not in classify(text).entities

    def test_zonal_entities_extracted(self):
        from repro.llm.nlu import classify

        parsed = classify(
            "run a monte carlo study on ieee14 with 4 zones correlated 60% "
            "and slice by zone"
        )
        assert parsed.entities["n_zones"] == 4
        assert parsed.entities["rho_percent"] == 60.0
        assert parsed.entities["slice_by"] == "hot_zone"

    def test_bare_correlation_coefficient_read_as_fraction(self):
        from repro.llm.nlu import classify

        parsed = classify(
            "run a monte carlo study on ieee14 with 4 zones correlated 0.6"
        )
        assert parsed.entities["rho_percent"] == 60.0

    def test_plan_implies_zones_for_hot_zone_slices(self):
        from repro.llm.nlu import classify
        from repro.llm.simulated import SimulatedLLM

        llm = SimulatedLLM("gpt-5-mini")
        plan = llm._plan(
            classify("run a monte carlo study on ieee14 broken down by zone"),
            {},
            {"run_monte_carlo_study"},
        )
        args = plan[0].arguments
        assert args["slice_by"] == "hot_zone"
        assert args["n_zones"] == 4  # implied so the draws carry the tag

    def test_plan_carries_slice_by(self):
        from repro.llm.nlu import classify
        from repro.llm.simulated import SimulatedLLM

        llm = SimulatedLLM("gpt-5-mini")
        parsed = classify("run a daily profile study on ieee14 sliced by hour")
        plan = llm._plan(parsed, {}, {"run_daily_profile_study"})
        assert plan[0].tool == "run_daily_profile_study"
        assert plan[0].arguments["slice_by"] == "hour_of_day"

    def test_plan_omits_slice_by_when_not_asked(self):
        from repro.llm.nlu import classify
        from repro.llm.simulated import SimulatedLLM

        llm = SimulatedLLM("gpt-5-mini")
        parsed = classify("run a daily profile study on ieee14")
        plan = llm._plan(parsed, {}, {"run_daily_profile_study"})
        assert "slice_by" not in plan[0].arguments


class TestSlicedNarration:
    def test_study_narration_renders_slice_table(self, case14):
        from repro.llm.narration import narrate_study

        study = BatchStudyRunner(
            analysis="powerflow", slice_by=("hour_of_day",)
        ).run(case14, daily_profile(steps=24))
        payload = study.to_dict(max_scenarios=3)
        payload["study_kind"] = "daily_profile"
        text = narrate_study(payload, verbosity=1)
        assert "Sliced by hour of day (24 buckets):" in text
        assert "hour of day 0:" in text

    def test_full_verbosity_renders_every_cell(self, case14):
        from repro.llm.narration import narrate_study

        study = BatchStudyRunner(
            analysis="powerflow", slice_by=("hour_of_day",)
        ).run(case14, daily_profile(steps=24))
        payload = study.to_dict()
        payload["study_kind"] = "daily_profile"
        text = narrate_study(payload, verbosity=2)
        for hour in range(24):
            assert f"hour of day {hour}:" in text

    def test_session_end_to_end_sliced_study(self):
        from repro.core.session import GridMindSession

        session = GridMindSession(model="gpt-5-mini", seed=1)
        reply = session.ask(
            "Run a daily profile study with 24 steps on ieee14 and slice by hour"
        )
        assert "Sliced by hour of day" in reply.text
        summary = session.context.study_summary
        assert summary["slice_by"] == ["hour_of_day"]
        assert summary["aggregate"]["slices"]["hour_of_day"]["n_cells"] == 24

    def test_empty_slice_block_is_reported_not_hidden(self):
        from repro.llm.narration import narrate_slices

        slices = {
            "hot_zone": {
                "by": "hot_zone",
                "n_cells": 0,
                "max_values": 32,
                "n_overflow_values": 0,
                "n_unsliced": 50,
                "cells": [],
            }
        }
        lines = narrate_slices(slices, verbosity=1)
        assert lines == [
            "Sliced by hot zone: no scenarios carried this tag (50 untagged)."
        ]

    def test_monte_carlo_tool_guards_hot_zone_without_zones(self):
        from repro.core.agents.study_agent import build_study_registry
        from repro.core.context import AgentContext

        registry = build_study_registry(AgentContext())
        payload = json.loads(
            registry.call(
                "run_monte_carlo_study",
                {"case_name": "ieee14", "n_scenarios": 2, "slice_by": "zone"},
            )
        )
        assert "n_zones >= 2" in payload["error"]

    def test_comparison_narration_mentions_slice_shift(self):
        from repro.llm.narration import narrate_study_comparison

        res = {
            "a": {"n_scenarios": 10, "study_kind": "profile", "label": "day1"},
            "b": {"n_scenarios": 10, "study_kind": "profile", "label": "day2"},
            "aggregate_a": {"violation_rate": 0.1},
            "aggregate_b": {"violation_rate": 0.3},
            "delta": {
                "violation_rate": 0.2,
                "slices": {
                    "hour_of_day": [
                        {"value": "0", "violation_rate": 0.0},
                        {"value": "17", "violation_rate": 0.5, "cost_p50": 12.5},
                    ]
                },
            },
        }
        text = narrate_study_comparison(res, verbosity=1)
        assert "hour of day 17" in text
        assert "+50 points" in text


class TestServiceSliceAPI:
    def test_run_study_infers_and_reports_slices(self, tmp_path):
        import asyncio

        from repro.service import GridMindService
        from repro.service.api import StudyRequest

        async def scenario():
            async with GridMindService(
                max_workers=1, store_dir=str(tmp_path / "svc")
            ) as service:
                reply = await service.run_study(
                    StudyRequest(case_name="ieee14", kind="profile", n_scenarios=12)
                )
                assert reply.slice_by == ["hour_of_day"]
                agg = reply.summary["aggregate"]
                assert agg["slices"]["hour_of_day"]["n_cells"] == 12
                # The stored index carries the same sliced aggregate.
                index = service.store.aggregate_index(reply.study_key)
                assert index["aggregate"] == agg
                # Explicit opt-out.
                plain = await service.run_study(
                    StudyRequest(
                        case_name="ieee14",
                        kind="profile",
                        n_scenarios=12,
                        lo_percent=85.0,
                        slice_by=[],
                    )
                )
                assert plain.slice_by == []
                assert "slices" not in plain.summary["aggregate"]
                # Zonal correlated Monte Carlo through the service API.
                zonal = await service.run_study(
                    StudyRequest(
                        case_name="ieee14",
                        kind="monte_carlo",
                        n_scenarios=10,
                        n_zones=3,
                        rho_percent=50.0,
                    )
                )
                assert zonal.slice_by == ["hot_zone"]
                cells = zonal.summary["aggregate"]["slices"]["hot_zone"]["cells"]
                assert sum(c["n"] for c in cells) == 10

        asyncio.run(scenario())

    def test_cli_study_slice_by_flag(self, capsys):
        from repro.core.cli import main

        rc = main(
            [
                "study",
                "--case",
                "ieee14",
                "--kind",
                "profile",
                "-n",
                "12",
                "--slice-by",
                "hour",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "sliced by hour_of_day (12 buckets):" in out

    def test_cli_rejects_zones_for_non_monte_carlo(self, capsys):
        from repro.core.cli import main

        rc = main(
            ["study", "--case", "ieee14", "--kind", "outage", "--zones", "4"]
        )
        assert rc == 2
        assert "monte_carlo studies only" in capsys.readouterr().err

    def test_cli_study_zonal_monte_carlo(self, capsys):
        from repro.core.cli import main

        rc = main(
            [
                "study",
                "--case",
                "ieee14",
                "--kind",
                "monte-carlo",
                "-n",
                "10",
                "--zones",
                "3",
                "--rho",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "sliced by hot_zone" in out
