"""The agent coordinator: multi-step execution over shared context.

Runs the planner's workflow steps in order, dispatching each clause to
its domain agent.  All agents share one :class:`AgentContext`, so an
ACOPF solution deposited by step 1 is the validated base point the CA
agent reuses in step 2 — the paper's produce-validate-consume loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...llm.base import TokenUsage
from ..context import AgentContext
from ..schemas import ToolCallLogEntry, WorkflowState
from .base import Agent, AgentReply
from .planner import PlannerAgent


@dataclass
class SessionReply:
    """Aggregated outcome of one user request (possibly multi-agent)."""

    text: str
    workflow: WorkflowState
    replies: list[AgentReply] = field(default_factory=list)
    usage: TokenUsage = field(default_factory=TokenUsage)
    latency_s: float = 0.0  # virtual LLM seconds
    wall_s: float = 0.0  # real solver/tool seconds (set by the session)

    @property
    def tool_calls(self) -> list[ToolCallLogEntry]:
        return [c for r in self.replies for c in r.tool_calls]

    @property
    def agents_involved(self) -> list[str]:
        seen: list[str] = []
        for r in self.replies:
            if r.agent not in seen:
                seen.append(r.agent)
        return seen


class Coordinator:
    """Routes planned steps to agents and merges their replies."""

    def __init__(
        self,
        planner: PlannerAgent,
        agents: dict[str, Agent],
        context: AgentContext,
    ) -> None:
        if not agents:
            raise ValueError("coordinator needs at least one agent")
        self.planner = planner
        self.agents = agents
        self.context = context
        self.history: list[WorkflowState] = []

    def dispatch(self, text: str) -> SessionReply:
        """Plan and execute one user request end to end."""
        workflow = self.planner.plan(text)
        self.history.append(workflow)

        replies: list[AgentReply] = []
        usage = TokenUsage()
        latency = 0.0

        for i, step in enumerate(workflow.steps):
            agent = self.agents.get(step.agent)
            if agent is None:  # pragma: no cover - route table guards this
                workflow.mark(i, "failed")
                continue
            workflow.mark(i, "running")
            reply = agent.handle(step.clause)
            replies.append(reply)
            usage = usage + reply.usage
            latency += reply.latency_s
            failed = any(not c.ok for c in reply.tool_calls) and not reply.text
            workflow.mark(i, "failed" if failed else "done")

        text_out = self._merge_texts(replies)
        return SessionReply(
            text=text_out,
            workflow=workflow,
            replies=replies,
            usage=usage,
            latency_s=latency,
        )

    @staticmethod
    def _merge_texts(replies: list[AgentReply]) -> str:
        if not replies:
            return "I could not map the request to any analysis capability."
        if len(replies) == 1:
            return replies[0].text
        blocks = []
        for r in replies:
            header = {
                "acopf": "ACOPF analysis",
                "contingency": "Contingency analysis",
                "study": "Scenario study",
            }.get(r.agent, r.agent)
            blocks.append(f"[{header}]\n{r.text}")
        return "\n\n".join(blocks)
