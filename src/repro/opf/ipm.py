"""Primal-dual interior-point method for smooth NLPs (MIPS-style).

Solves::

    min f(x)   s.t.  g(x) = 0,   h(x) <= 0,   xmin <= x <= xmax

with the pure (non-step-controlled) primal-dual algorithm of MATPOWER's
MIPS solver [Wang et al., "On computational issues of market-based optimal
power flow", IEEE Trans. Power Systems 22(3), 2007].  The caller supplies
sparse first derivatives and the Hessian of the Lagrangian; box bounds are
folded into the inequality set here.

The only scipy dependency is the sparse LU behind the KKT solve, so this
module is reusable for any smooth constrained problem (the ACOPF assembler
is just one client).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sla

# Algorithm constants (MIPS defaults).
_XI = 0.99995
_SIGMA = 0.1
_Z0 = 1.0
_ALPHA_MIN = 1e-8


@dataclass
class IPMOptions:
    feastol: float = 1e-6
    gradtol: float = 1e-6
    comptol: float = 1e-6
    costtol: float = 1e-6
    max_iter: int = 150
    verbose: bool = False


@dataclass
class IPMResult:
    x: np.ndarray
    f: float
    converged: bool
    iterations: int
    lam_eq: np.ndarray  # equality multipliers
    mu_ineq: np.ndarray  # inequality multipliers (nonlinear rows only)
    mu_lower: np.ndarray  # multipliers on x >= xmin
    mu_upper: np.ndarray  # multipliers on x <= xmax
    message: str = ""
    history: list[dict] = field(default_factory=list)


def solve_ipm(
    x0: np.ndarray,
    f_fcn: Callable[[np.ndarray], tuple[float, np.ndarray]],
    g_fcn: Callable[[np.ndarray], tuple[np.ndarray, sparse.spmatrix]],
    h_fcn: Callable[[np.ndarray], tuple[np.ndarray, sparse.spmatrix]],
    hess_fcn: Callable[[np.ndarray, np.ndarray, np.ndarray], sparse.spmatrix],
    xmin: np.ndarray,
    xmax: np.ndarray,
    options: IPMOptions | None = None,
) -> IPMResult:
    """Run the primal-dual interior-point iteration.

    ``f_fcn(x) -> (f, df)``; ``g_fcn(x) -> (g, dg)`` with ``dg`` shaped
    (neq, nx); ``h_fcn(x) -> (h, dh)`` with ``dh`` shaped (nh, nx);
    ``hess_fcn(x, lam, mu) -> Lxx`` (nx, nx) including the objective term.
    ``mu`` passed to ``hess_fcn`` covers only the nonlinear ``h`` rows —
    bound rows are linear and contribute nothing.
    """
    opts = options or IPMOptions()
    x = np.asarray(x0, dtype=float).copy()
    nx = x.size

    # --- fold box bounds into linear inequality rows --------------------
    lb_rows = np.flatnonzero(np.isfinite(xmin))
    ub_rows = np.flatnonzero(np.isfinite(xmax))
    n_lb, n_ub = lb_rows.size, ub_rows.size
    eye = sparse.identity(nx, format="csr")
    a_lb = -eye[lb_rows]  # xmin - x <= 0
    a_ub = eye[ub_rows]  # x - xmax <= 0

    def full_h(xv: np.ndarray) -> tuple[np.ndarray, sparse.spmatrix]:
        hn, dhn = h_fcn(xv)
        h_all = np.concatenate([hn, xmin[lb_rows] - xv[lb_rows], xv[ub_rows] - xmax[ub_rows]])
        dh_all = sparse.vstack([dhn, a_lb, a_ub], format="csr")
        return h_all, dh_all

    # Nudge x0 strictly inside its box so barrier terms are finite.
    span = np.where(
        np.isfinite(xmin) & np.isfinite(xmax), np.maximum(xmax - xmin, 0.0), np.inf
    )
    shift = np.minimum(1e-2, 0.25 * span)
    x = np.where(np.isfinite(xmin), np.maximum(x, xmin + shift), x)
    x = np.where(np.isfinite(xmax), np.minimum(x, xmax - shift), x)

    f, df = f_fcn(x)
    g, dg = g_fcn(x)
    h, dh = full_h(x)
    neq, niq = g.size, h.size

    lam = np.zeros(neq)
    z = np.full(niq, _Z0)
    mask = h < -_Z0
    z[mask] = -h[mask]
    gamma = 1.0
    mu = gamma / z
    e = np.ones(niq)

    def conditions(
        fv: float, f_prev: float, gv: np.ndarray, hv: np.ndarray, lx: np.ndarray
    ) -> tuple[float, float, float, float]:
        feas = max(
            float(np.linalg.norm(gv, np.inf)) if gv.size else 0.0,
            float(hv.max()) if hv.size else 0.0,
        ) / (1.0 + max(float(np.linalg.norm(x, np.inf)), float(np.linalg.norm(z, np.inf))))
        grad = float(np.linalg.norm(lx, np.inf)) / (
            1.0
            + max(
                float(np.linalg.norm(lam, np.inf)) if lam.size else 0.0,
                float(np.linalg.norm(mu, np.inf)) if mu.size else 0.0,
            )
        )
        comp = float(z @ mu) / (1.0 + float(np.linalg.norm(x, np.inf)))
        cost = abs(fv - f_prev) / (1.0 + abs(f_prev))
        return feas, grad, comp, cost

    lx = df + dg.T @ lam + dh.T @ mu
    f_prev = f
    feas, grad, comp, costc = conditions(f, f, g, h, lx)
    converged = (
        feas < opts.feastol and grad < opts.gradtol and comp < opts.comptol
    )
    history: list[dict] = []
    message = ""
    it = 0
    restarts_left = 2

    while not converged and it < opts.max_iter:
        it += 1
        mu_nl = mu[: niq - n_lb - n_ub]
        lxx = hess_fcn(x, lam, mu_nl).tocsr()

        zinv = 1.0 / z
        dh_zinv_mu = dh.T @ sparse.diags(zinv * mu)
        m_mat = lxx + dh_zinv_mu @ dh
        n_vec = lx + dh.T @ (zinv * (gamma * e + mu * h))
        kkt = sparse.bmat([[m_mat, dg.T], [dg, None]], format="csc")
        rhs = np.concatenate([-n_vec, -g])

        dxl = _solve_kkt(kkt, rhs)
        if dxl is None:
            message = f"KKT system singular at iteration {it}"
            break
        dx = dxl[:nx]
        dlam = dxl[nx:]

        dz = -h - z - dh @ dx
        dmu = -mu + zinv * (gamma * e - mu * dz)

        # primal / dual step lengths
        neg_z = dz < 0
        alpha_p = min(1.0, _XI * float(np.min(-z[neg_z] / dz[neg_z])) if neg_z.any() else 1.0)
        neg_mu = dmu < 0
        alpha_d = min(1.0, _XI * float(np.min(-mu[neg_mu] / dmu[neg_mu])) if neg_mu.any() else 1.0)

        if alpha_p < _ALPHA_MIN and alpha_d < _ALPHA_MIN:
            if restarts_left > 0:
                # Jamming: some slack/multiplier pair hit its guard while
                # the iterate is still infeasible.  Re-centre (z, mu) from
                # the current h and continue — a cheap Mehrotra-style
                # recovery that rescues most stalls.
                restarts_left -= 1
                z = np.full(niq, _Z0)
                mask = h < -_Z0
                z[mask] = -h[mask]
                gamma = 1.0
                mu = gamma / z
                lx = df + dg.T @ lam + dh.T @ mu
                continue
            message = f"step size collapsed at iteration {it}"
            break

        x = x + alpha_p * dx
        z = z + alpha_p * dz
        lam = lam + alpha_d * dlam
        mu = mu + alpha_d * dmu
        gamma = _SIGMA * float(z @ mu) / niq if niq else 0.0

        f, df = f_fcn(x)
        g, dg = g_fcn(x)
        h, dh = full_h(x)
        lx = df + dg.T @ lam + dh.T @ mu

        feas, grad, comp, costc = conditions(f, f_prev, g, h, lx)
        history.append(
            {"iter": it, "f": f, "feascond": feas, "gradcond": grad,
             "compcond": comp, "costcond": costc, "alpha_p": alpha_p, "alpha_d": alpha_d}
        )
        if opts.verbose:  # pragma: no cover - debugging aid
            print(
                f"  ipm it={it:3d} f={f:14.6g} feas={feas:9.2e} "
                f"grad={grad:9.2e} comp={comp:9.2e} cost={costc:9.2e}"
            )
        f_prev = f
        converged = (
            feas < opts.feastol
            and grad < opts.gradtol
            and comp < opts.comptol
            and costc < opts.costtol
        )

    if converged and not message:
        message = f"converged in {it} iterations"
    elif not message:
        message = f"did not converge within {opts.max_iter} iterations"

    nh_nl = niq - n_lb - n_ub
    mu_lower = np.zeros(nx)
    mu_upper = np.zeros(nx)
    mu_lower[lb_rows] = mu[nh_nl : nh_nl + n_lb]
    mu_upper[ub_rows] = mu[nh_nl + n_lb :]

    return IPMResult(
        x=x,
        f=f,
        converged=bool(converged),
        iterations=it,
        lam_eq=lam,
        mu_ineq=mu[:nh_nl],
        mu_lower=mu_lower,
        mu_upper=mu_upper,
        message=message,
        history=history,
    )


def _solve_kkt(kkt: sparse.csc_matrix, rhs: np.ndarray) -> np.ndarray | None:
    """Sparse LU solve with escalating diagonal regularisation on failure."""
    for reg in (0.0, 1e-10, 1e-8, 1e-6):
        mat = kkt if reg == 0.0 else kkt + reg * sparse.identity(kkt.shape[0], format="csc")
        try:
            sol = sla.splu(mat.tocsc()).solve(rhs)
        except RuntimeError:
            continue
        if np.all(np.isfinite(sol)):
            return sol
    return None
