"""Schema-bound function-tool registry.

The paper's anti-hallucination backbone: every numerical capability is a
registered tool with a JSON schema derived from a pydantic argument model;
calls are validated before execution, results are serialised structured
objects, and every invocation is recorded for the audit trail.  New tools
can be registered at runtime — "the planner notices capabilities without
refactoring core logic" (Section 3.1).
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from pydantic import BaseModel, ValidationError

from ..instrumentation.metrics import get_metrics
from ..instrumentation.ringlog import RingLog
from ..instrumentation.trace import get_tracer
from ..llm.base import ToolSpec
from .schemas import ToolCallLogEntry


class ToolError(Exception):
    """Raised by tool bodies for domain-level failures (bad bus id, ...)."""


@dataclass
class RegisteredTool:
    name: str
    description: str
    handler: Callable[..., dict]
    args_model: type[BaseModel] | None = None

    def spec(self) -> ToolSpec:
        params = (
            self.args_model.model_json_schema()
            if self.args_model is not None
            else {"type": "object", "properties": {}}
        )
        return ToolSpec(name=self.name, description=self.description, parameters=params)


#: Default audit-log cap.  Long-lived service sessions issue tool calls
#: indefinitely; an unbounded list is a slow memory leak, and nothing
#: downstream needs more than the recent window (agents collect each
#: turn's entries as they are produced).
DEFAULT_MAX_LOG_ENTRIES = 1000


@dataclass
class ToolRegistry:
    """Named tool collection with validation, logging, and JSON results.

    The audit log is a ring buffer: at most ``max_log_entries`` entries
    are retained (``None`` disables the cap).  Every entry carries a
    monotonic ``seq`` number, so consumers track positions with
    :attr:`call_count` / :meth:`entries_since` instead of list indices —
    indices shift once eviction starts.
    """

    tools: dict[str, RegisteredTool] = field(default_factory=dict)
    max_log_entries: int | None = DEFAULT_MAX_LOG_ENTRIES
    log: RingLog[ToolCallLogEntry] = field(default_factory=RingLog)

    def __post_init__(self) -> None:
        if not isinstance(self.log, RingLog) or (
            self.log.max_entries != self.max_log_entries
        ):
            # RingLog-aware re-cap: passing the old log preserves both the
            # monotonic numbering and the newest retained entries.
            self.log = RingLog(self.max_log_entries, self.log)

    def register(
        self,
        name: str,
        description: str,
        handler: Callable[..., dict],
        args_model: type[BaseModel] | None = None,
    ) -> None:
        if name in self.tools:
            raise ValueError(f"tool {name!r} is already registered")
        self.tools[name] = RegisteredTool(name, description, handler, args_model)

    def specs(self) -> list[ToolSpec]:
        return [t.spec() for t in self.tools.values()]

    def names(self) -> set[str]:
        return set(self.tools)

    def call(self, name: str, arguments: dict) -> str:
        """Execute a tool; always returns a JSON string (result or error).

        Errors never raise out of the registry: the model must see them as
        structured tool output and decide how to recover, exactly like a
        provider tool-call loop.
        """
        start = time.perf_counter()
        entry = ToolCallLogEntry(tool=name, arguments=dict(arguments), seq=self.log.count)
        with get_tracer().span(f"tool.{name}") as span:
            try:
                tool = self.tools.get(name)
                if tool is None:
                    raise ToolError(
                        f"unknown tool {name!r}; available: {sorted(self.tools)}"
                    )
                kwargs = dict(arguments)
                if tool.args_model is not None:
                    try:
                        kwargs = tool.args_model(**arguments).model_dump(
                            exclude_none=True
                        )
                    except ValidationError as exc:
                        raise ToolError(f"invalid arguments: {exc.errors()}") from exc
                result = tool.handler(**kwargs)
                if not isinstance(result, dict):
                    raise ToolError(
                        f"tool {name!r} returned {type(result).__name__}, expected dict"
                    )
                payload = json.dumps(result, default=str)
                entry.result = json.loads(payload)  # normalised copy for the audit trail
            except ToolError as exc:
                entry.ok = False
                entry.error = str(exc)
                span.status = "error"
                span.error = str(exc)
                payload = json.dumps({"error": str(exc), "tool": name})
            finally:
                entry.duration_s = time.perf_counter() - start
                entry.seq = self.log.append(entry)
                metrics = get_metrics()
                metrics.counter(
                    "gridmind_tool_calls_total", "Tool invocations by name and outcome"
                ).inc(tool=name, ok=entry.ok)
                metrics.histogram(
                    "gridmind_tool_seconds", "Tool call duration"
                ).observe(entry.duration_s)
        return payload

    @property
    def call_count(self) -> int:
        """Total calls ever issued (monotonic; survives ring-buffer eviction)."""
        return self.log.count

    def entries_since(self, seq: int) -> list[ToolCallLogEntry]:
        """Retained log entries with ``entry.seq >= seq``, oldest first."""
        return [e for e in self.log if e.seq >= seq]

    def export_log(self, path) -> None:
        """Dump the retained audit-log window as JSON lines."""
        with open(path, "w") as fh:
            for entry in self.log:
                fh.write(entry.model_dump_json() + "\n")

    def failures(self) -> list[ToolCallLogEntry]:
        return [e for e in self.log if not e.ok]
