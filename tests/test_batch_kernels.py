"""Batched physics kernels: bit-identity, routing, caching, and wiring.

The batched fast path (`repro.powerflow.batch.DcKernel` + the runner's
chunk-level dispatch) promises *bit-identical* results to the scalar
per-scenario loop — these tests assert equality with ``==``, never
``allclose``: multi-RHS solves against per-row solves, vectorized
injection replay against realize-and-compile, whole batched studies
against scalar studies across chunk sizes and execution paths, and the
graceful degradation for mixed or topology-changing chunks.
"""

import dataclasses

import numpy as np
import pytest

from repro.grid.cases import load_case
from repro.contingency.lodf import compute_factors, compute_ptdf
from repro.contingency.screening import screen_dc, screen_dc_many
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.powerflow import DcKernel, dc_injections, solve_dc, topology_digest
from repro.scenarios import (
    ANALYSES,
    BatchStudyRunner,
    BranchOutage,
    GaussianLoadNoise,
    GeneratorOutage,
    PerBusLoadScale,
    RenewableInjection,
    Scenario,
    UniformLoadScale,
    ZonalLoadScale,
    monte_carlo_ensemble,
)
from repro.scenarios.runner import StudyConfig, _WorkerState
from repro.service import StudyExecutor


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _zero_times(study):
    """Per-record dicts with timing removed (solve_time_s is wall clock,
    the only field the batched path cannot reproduce bit-identically)."""
    out = []
    for r in study.results:
        d = dataclasses.asdict(r)
        d["solve_time_s"] = 0.0
        out.append(d)
    return out


# ----------------------------------------------------------------------
# kernel: solve_one / solve_many / ptdf
# ----------------------------------------------------------------------


class TestDcKernel:
    def test_solve_dc_same_with_and_without_kernel(self, case30):
        plain = solve_dc(case30)
        keyed = solve_dc(case30, kernel=DcKernel.from_network(case30))
        assert np.array_equal(plain.va_deg, keyed.va_deg)
        assert np.array_equal(plain.p_from_mw, keyed.p_from_mw)
        assert np.array_equal(plain.loading_percent, keyed.loading_percent)
        assert np.array_equal(plain.gen_p_mw, keyed.gen_p_mw)

    @pytest.mark.parametrize("case_name", ["ieee14", "ieee57", "ieee118"])
    def test_solve_many_rows_bit_identical_to_solve_one(self, case_name):
        net = load_case(case_name)
        kernel = DcKernel.from_network(net)
        base = dc_injections(net.compile())
        rng = np.random.default_rng(0)
        stack = base[np.newaxis, :] * rng.uniform(0.7, 1.3, (16, 1))
        batch = kernel.solve_many(stack)
        for i in range(stack.shape[0]):
            one = kernel.solve_one(stack[i])
            assert np.array_equal(batch.theta[i], one.theta)
            assert np.array_equal(batch.p_flow[i], one.p_flow)
            assert np.array_equal(
                batch.loading_percent[i], one.loading_percent
            )

    def test_solve_many_accepts_single_vector(self, case14):
        kernel = DcKernel.from_network(case14)
        p = dc_injections(case14.compile())
        batch = kernel.solve_many(p)
        assert batch.n_scenarios == 1
        assert np.array_equal(batch.p_flow[0], kernel.solve_one(p).p_flow)

    def test_ptdf_matches_compute_ptdf(self, case30):
        arr = case30.compile()
        kernel = DcKernel(arr)
        assert np.array_equal(compute_ptdf(arr), kernel.ptdf())
        # compute_ptdf with a kernel reuses its (cached) matrix.
        assert compute_ptdf(arr, kernel=kernel) is kernel.ptdf()

    def test_ptdf_row_matches_full_matrix(self, case57):
        arr = case57.compile()
        full = DcKernel(arr).ptdf()
        single = DcKernel(arr)  # fresh kernel: row solve, no dense matrix
        for row in (0, 7, arr.n_branch - 1):
            assert np.array_equal(single.ptdf_row(row), full[row])
        with pytest.raises(IndexError):
            single.ptdf_row(arr.n_branch)

    def test_compute_factors_with_shared_kernel_identical(self, case30):
        kernel = DcKernel.from_network(case30)
        a = compute_factors(case30)
        b = compute_factors(case30, kernel=kernel)
        assert np.array_equal(a.ptdf, b.ptdf)
        assert np.array_equal(a.lodf, b.lodf)
        assert np.array_equal(a.islanding_outages, b.islanding_outages)

    def test_topology_digest_ignores_loads(self, case14):
        before = topology_digest(case14.compile())
        scaled = Scenario("s", (UniformLoadScale(1.2),)).realize(case14)
        assert topology_digest(scaled.compile()) == before
        outaged = Scenario("o", (BranchOutage(3),)).realize(case14)
        assert topology_digest(outaged.compile()) != before

    def test_batch_accounting(self, case14):
        kernel = DcKernel.from_network(case14)
        p = dc_injections(case14.compile())
        kernel.solve_one(p)
        assert (kernel.n_batch_solves, kernel.n_batch_rows) == (0, 0)
        kernel.solve_many(np.tile(p, (5, 1)))
        assert (kernel.n_batch_solves, kernel.n_batch_rows) == (1, 5)


# ----------------------------------------------------------------------
# injection vectors: vectorized replay == realize + compile
# ----------------------------------------------------------------------


class TestInjectionVector:
    @pytest.mark.parametrize(
        "perts",
        [
            (UniformLoadScale(1.17),),
            (PerBusLoadScale(((2, 1.4), (4, 0.6))),),
            (GaussianLoadNoise(sigma=0.08, seed=42),),
            (ZonalLoadScale((1.2, 0.9, 1.05)),),
            (RenewableInjection(bus=5, p_mw=40.0),),
            # Order matters: the renewable appends a load row *before*
            # the noise draw, so the noise must see one extra row.
            (RenewableInjection(bus=3, p_mw=25.0), GaussianLoadNoise(0.05, 7)),
            (GaussianLoadNoise(0.05, 7), RenewableInjection(bus=3, p_mw=25.0)),
            (UniformLoadScale(0.93), ZonalLoadScale((1.1, 1.0))),
        ],
    )
    def test_bit_identical_to_realized_network(self, case14, perts):
        scn = Scenario("s", perts)
        assert scn.injection_only
        direct = scn.injection_vector(case14)
        realized = dc_injections(scn.realize(case14).compile())
        assert np.array_equal(direct, realized)

    def test_topology_changers_not_injection_only(self):
        assert not Scenario("s", (BranchOutage(0),)).injection_only
        assert not Scenario("s", (GeneratorOutage(0),)).injection_only
        assert not Scenario(
            "s", (UniformLoadScale(1.1), BranchOutage(0))
        ).injection_only
        assert Scenario("base").injection_only

    def test_validation_errors_match_realize(self, case14):
        for perts in [
            (UniformLoadScale(-0.5),),
            (PerBusLoadScale(((99, 1.1),)),),
            (GaussianLoadNoise(sigma=-1.0, seed=0),),
            (RenewableInjection(bus=2, p_mw=-5.0),),
        ]:
            scn = Scenario("bad", perts)
            with pytest.raises(Exception) as via_realize:
                scn.realize(case14)
            with pytest.raises(Exception) as via_vector:
                scn.injection_vector(case14)
            assert str(via_vector.value) == str(via_realize.value)


# ----------------------------------------------------------------------
# the dc study kind, batched == scalar
# ----------------------------------------------------------------------


class TestDcStudy:
    def test_dc_listed_everywhere(self):
        assert "dc" in ANALYSES

    def test_nlu_maps_dc_but_not_dcopf(self):
        from repro.llm.nlu import classify

        p = classify("run a dc monte carlo study on ieee14")
        assert p.entities["study_analysis"] == "dc"
        p = classify("run a dcopf monte carlo study on ieee14")
        assert p.entities["study_analysis"] == "dcopf"

    @pytest.mark.parametrize("chunk_size", [1, 3, 8])
    def test_batched_equals_scalar_across_chunk_sizes(self, case14, chunk_size):
        scns = monte_carlo_ensemble(n=8, sigma=0.06, seed=21)
        batched = BatchStudyRunner(
            analysis="dc", chunk_size=chunk_size
        ).run(case14, scns)
        scalar = BatchStudyRunner(
            analysis="dc", chunk_size=chunk_size, batch_kernels=False
        ).run(case14, scns)
        assert _zero_times(batched) == _zero_times(scalar)
        assert batched.aggregate().to_dict() == scalar.aggregate().to_dict()

    def test_mixed_chunk_preserves_order_and_values(self, case14):
        """Injection-only and outage scenarios interleaved in one chunk."""
        scns = [
            Scenario("a", (UniformLoadScale(1.1),)),
            Scenario("b", (BranchOutage(2),)),
            Scenario("c", (GaussianLoadNoise(0.05, 3),)),
            Scenario("d", (BranchOutage(5), UniformLoadScale(1.05))),
            Scenario("e", (RenewableInjection(bus=4, p_mw=20.0),)),
        ]
        batched = BatchStudyRunner(analysis="dc", chunk_size=5).run(case14, scns)
        scalar = BatchStudyRunner(
            analysis="dc", chunk_size=5, batch_kernels=False
        ).run(case14, scns)
        assert [r.name for r in batched.results] == list("abcde")
        assert _zero_times(batched) == _zero_times(scalar)

    def test_error_scenarios_get_scalar_identical_records(self, case14):
        scns = [
            Scenario("ok", (UniformLoadScale(1.05),)),
            Scenario("bad", (UniformLoadScale(-2.0),)),
            Scenario("ok2", (UniformLoadScale(0.95),)),
        ]
        batched = BatchStudyRunner(analysis="dc", chunk_size=3).run(case14, scns)
        scalar = BatchStudyRunner(
            analysis="dc", chunk_size=3, batch_kernels=False
        ).run(case14, scns)
        assert _zero_times(batched) == _zero_times(scalar)
        bad = batched.results[1]
        assert not bad.converged
        assert "load scale factor must be >= 0" in bad.error

    def test_serial_pool_and_executor_identical(self, case14):
        scns = monte_carlo_ensemble(n=8, sigma=0.05, seed=11)
        serial = BatchStudyRunner(analysis="dc", n_jobs=1).run(case14, scns)
        pooled = BatchStudyRunner(analysis="dc", n_jobs=2).run(case14, scns)
        with StudyExecutor(max_workers=2) as executor:
            streamed = BatchStudyRunner(analysis="dc", executor=executor).run(
                case14, scns, keep_results=False
            )
        assert serial.aggregate().to_dict() == pooled.aggregate().to_dict()
        assert serial.aggregate().to_dict() == streamed.aggregate().to_dict()

    def test_dc_study_spec_hash_ignores_batch_toggle(self, case14):
        from repro.service.store import spec_hash

        scns = list(monte_carlo_ensemble(n=2, sigma=0.05, seed=1))
        on = spec_hash(StudyConfig(analysis="dc", batch_kernels=True), scns)
        off = spec_hash(StudyConfig(analysis="dc", batch_kernels=False), scns)
        assert on == off


# ----------------------------------------------------------------------
# batched screening
# ----------------------------------------------------------------------


class TestBatchedScreening:
    def test_screen_dc_many_bit_identical_to_screen_dc(self, case14):
        scns = list(monte_carlo_ensemble(n=6, sigma=0.08, seed=5))
        kernel = DcKernel.from_network(case14)
        factors = compute_factors(case14, kernel=kernel)
        stack = np.vstack([s.injection_vector(case14) for s in scns])
        many = screen_dc_many(kernel, factors, stack)
        assert len(many) == len(scns)
        for scn, est in zip(scns, many):
            solo = screen_dc(scn.realize(case14))
            assert np.array_equal(
                est.est_max_loading_percent, solo.est_max_loading_percent
            )
            assert np.array_equal(est.est_severity, solo.est_severity)
            assert np.array_equal(
                est.est_overload_count, solo.est_overload_count
            )
            assert est.top(5) == solo.top(5)

    def test_screening_study_batched_equals_scalar(self, case14):
        scns = monte_carlo_ensemble(n=4, sigma=0.05, seed=8)
        batched = BatchStudyRunner(
            analysis="screening", ac_budget=4, chunk_size=4
        ).run(case14, scns)
        scalar = BatchStudyRunner(
            analysis="screening", ac_budget=4, chunk_size=4,
            batch_kernels=False,
        ).run(case14, scns)
        assert _zero_times(batched) == _zero_times(scalar)


# ----------------------------------------------------------------------
# worker-state caches and counters
# ----------------------------------------------------------------------


class TestWorkerState:
    def test_kernel_cache_hit_for_injection_only_ensemble(self, case14):
        state = _WorkerState(case14, StudyConfig(analysis="dc"))
        for scn in monte_carlo_ensemble(n=4, sigma=0.05, seed=2):
            state.run_scenario(scn)
        assert len(state.kernel_cache) == 1

    def test_factors_cache_capped(self, case14):
        state = _WorkerState(case14, StudyConfig(analysis="screening"))
        state.FACTORS_CACHE_MAX_ENTRIES = 3
        for bid in range(5):
            net = Scenario("o", (BranchOutage(bid),)).realize(case14)
            state.factors_for(net)
        assert len(state.factors_cache) <= 3

    def test_kernel_cache_capped(self, case14):
        state = _WorkerState(case14, StudyConfig(analysis="dc"))
        state.KERNEL_CACHE_MAX_ENTRIES = 2
        for bid in range(4):
            net = Scenario("o", (BranchOutage(bid),)).realize(case14)
            state.kernel_for(net)
        assert len(state.kernel_cache) <= 2

    def test_batch_counters_and_scenario_parity(self, case14, fresh_metrics):
        scns = list(monte_carlo_ensemble(n=6, sigma=0.05, seed=4))
        state = _WorkerState(case14, StudyConfig(analysis="dc"))
        results = state.run_chunk(scns)
        assert len(results) == 6
        assert fresh_metrics.counter("gridmind_batch_solves_total").total() == 1.0
        assert fresh_metrics.counter("gridmind_batch_rows_total").total() == 6.0
        # Metric parity: the batch path bills every scenario exactly once.
        assert (
            fresh_metrics.counter("gridmind_scenarios_total").total() == 6.0
        )

    def test_scalar_fallback_emits_no_batch_counters(self, case14, fresh_metrics):
        scns = [Scenario(f"o{b}", (BranchOutage(b),)) for b in range(3)]
        state = _WorkerState(case14, StudyConfig(analysis="dc"))
        state.run_chunk(scns)
        assert fresh_metrics.counter("gridmind_batch_solves_total").total() == 0.0

    def test_batch_kernels_off_forces_scalar(self, case14, fresh_metrics):
        scns = list(monte_carlo_ensemble(n=4, sigma=0.05, seed=4))
        state = _WorkerState(
            case14, StudyConfig(analysis="dc", batch_kernels=False)
        )
        state.run_chunk(scns)
        assert fresh_metrics.counter("gridmind_batch_solves_total").total() == 0.0
        assert fresh_metrics.counter("gridmind_scenarios_total").total() == 4.0


# ----------------------------------------------------------------------
# sensitivity wiring: one row through the shared kernel
# ----------------------------------------------------------------------


class TestFlowSensitivities:
    def test_single_row_matches_full_ptdf(self, case30):
        from repro.opf.sensitivity import flow_sensitivities

        arr = case30.compile()
        full = compute_ptdf(arr)
        for i, bid in enumerate(arr.branch_ids[:3]):
            assert np.array_equal(flow_sensitivities(case30, int(bid)), full[i])

    def test_unknown_branch_rejected(self, case30):
        from repro.opf.sensitivity import flow_sensitivities

        with pytest.raises(KeyError):
            flow_sensitivities(case30, 10_000)
