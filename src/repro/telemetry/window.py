"""Rolling-window studies: incremental reduction over an unbounded feed.

A batch study reduces a finite ensemble once; a standing watch must
answer "violation rate over the last hour, sliced by feeder and hour"
*continuously* while the feed never ends.  This module does that by
keeping one :class:`~repro.scenarios.aggregate.SlicedReducer` per *open*
window: a result at tick ``t`` folds into every window covering ``t``
(at most ``size/slide`` of them), and a window is closed — its
aggregate emitted, its reducer evicted — as soon as a result at or past
its end boundary arrives.  Peak memory is therefore
O(open windows x reducer) = O(window + K slices), never O(feed), and the
per-window aggregates inherit the reducer's bit-identical determinism.

Window semantics:

* windows are half-open tick ranges ``[index * slide, index * slide + size)``,
  tumbling when ``slide == size`` (the default), sliding when
  ``slide < size`` (``size`` must be a multiple of ``slide``);
* windows close strictly in index order, and ticks nobody reported
  still produce (empty) window results — silence is data on a feed;
* results may arrive out of order *within* the open horizon: anything
  covering a still-open window folds normally, anything older than
  every open window is counted in ``n_late_dropped`` rather than
  silently mutating history.

Window rollups feed the metrics/health spine: :func:`telemetry_rules`
declares the anomaly/violation/late-drop :class:`HealthRule`s that turn
per-window gauges into alerts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

from ..instrumentation.health import HealthRule
from ..scenarios.aggregate import (
    DEFAULT_SLICE_MAX_VALUES,
    EXACT_STATS_CAP,
    SlicedReducer,
    SliceSpec,
)

#: Default slice dimensions for windowed telemetry studies: the feeder
#: label from the network's zone metadata plus the profile hour.
DEFAULT_WINDOW_SLICES = ("feeder", "hour_of_day")

#: Tag values meaning "this result carried no anomaly".
_NO_ANOMALY = (None, "", "none", False, "False")


@dataclass(frozen=True)
class WindowSpec:
    """Shape of the rolling windows: size, slide, slice dimensions."""

    size_ticks: int
    slide_ticks: int | None = None  # None -> tumbling (== size)
    slice_by: tuple[str, ...] = DEFAULT_WINDOW_SLICES
    max_values: int = DEFAULT_SLICE_MAX_VALUES

    def __post_init__(self) -> None:
        if self.size_ticks < 1:
            raise ValueError(f"size_ticks must be >= 1, got {self.size_ticks}")
        slide = self.slide_ticks if self.slide_ticks is not None else self.size_ticks
        if not 1 <= slide <= self.size_ticks:
            raise ValueError(
                f"slide_ticks must be in [1, size_ticks], got {slide}"
            )
        if self.size_ticks % slide != 0:
            raise ValueError(
                f"size_ticks ({self.size_ticks}) must be a multiple of "
                f"slide_ticks ({slide})"
            )
        object.__setattr__(self, "slide_ticks", slide)
        object.__setattr__(self, "slice_by", tuple(self.slice_by))

    def slice_spec(self) -> SliceSpec:
        return SliceSpec(by=self.slice_by, max_values=self.max_values)

    def start(self, index: int) -> int:
        return index * self.slide_ticks

    def end(self, index: int) -> int:
        return index * self.slide_ticks + self.size_ticks

    def covering(self, tick: int) -> range:
        """Indices of every window whose ``[start, end)`` contains ``tick``."""
        if tick < 0:
            raise ValueError(f"tick must be >= 0, got {tick}")
        slide = self.slide_ticks
        last = tick // slide
        first = max(0, (tick - self.size_ticks) // slide + 1)
        return range(first, last + 1)

    @property
    def max_open(self) -> int:
        """Most windows that can be open at once: size / slide."""
        return self.size_ticks // self.slide_ticks


@dataclass
class WindowResult:
    """One closed window's aggregate (the reducer is gone by now)."""

    index: int
    start_tick: int
    end_tick: int  # exclusive
    n_results: int
    n_converged: int
    n_errors: int
    n_anomalous: int
    violation_rate: float
    anomaly_rate: float
    aggregate: dict | None  # StudyAggregate.to_dict(), None when empty
    slices: dict | None

    def to_dict(self) -> dict:
        out = {
            "index": self.index,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "n_results": self.n_results,
            "n_converged": self.n_converged,
            "n_errors": self.n_errors,
            "n_anomalous": self.n_anomalous,
            "violation_rate": round(self.violation_rate, 4),
            "anomaly_rate": round(self.anomaly_rate, 4),
        }
        if self.aggregate is not None:
            out["aggregate"] = self.aggregate
        if self.slices is not None:
            out["slices"] = self.slices
        return out


@dataclass
class _OpenWindow:
    reducer: SlicedReducer
    n_anomalous: int = 0


@dataclass
class RollingWindowStudy:
    """Fold tick-tagged results into rolling windows; emit them on close.

    ``add`` returns the windows the new result *closed* (often empty,
    occasionally several when the feed skipped ticks); ``finalize``
    flushes whatever is still open at end of feed.  Results must carry a
    ``"tick"`` tag — the tick is the event time the windows are defined
    over, so the study works identically for live and replayed feeds.
    """

    spec: WindowSpec
    exact_cap: int = EXACT_STATS_CAP
    _open: dict[int, _OpenWindow] = field(default_factory=dict)
    _closed_through: int = -1  # highest closed window index
    _max_tick_seen: int = -1
    n_results: int = 0
    n_late_dropped: int = 0
    n_windows_closed: int = 0
    peak_open_windows: int = 0

    # ------------------------------------------------------------------
    def _ensure(self, index: int) -> _OpenWindow:
        window = self._open.get(index)
        if window is None:
            window = self._open[index] = _OpenWindow(
                reducer=SlicedReducer(self.spec.slice_spec(), exact_cap=self.exact_cap)
            )
            if len(self._open) > self.peak_open_windows:
                self.peak_open_windows = len(self._open)
        return window

    def _close(self, index: int) -> WindowResult:
        window = self._open.pop(index, None)
        self._closed_through = index
        self.n_windows_closed += 1
        start, end = self.spec.start(index), self.spec.end(index)
        if window is None:
            return WindowResult(
                index=index, start_tick=start, end_tick=end,
                n_results=0, n_converged=0, n_errors=0, n_anomalous=0,
                violation_rate=0.0, anomaly_rate=0.0,
                aggregate=None, slices=None,
            )
        agg = window.reducer.result()
        n = agg.n_scenarios
        agg_dict = agg.to_dict()
        slices = agg_dict.pop("slices", None)
        return WindowResult(
            index=index,
            start_tick=start,
            end_tick=end,
            n_results=n,
            n_converged=agg.n_converged,
            n_errors=agg.n_errors,
            n_anomalous=window.n_anomalous,
            violation_rate=agg.violation_rate,
            anomaly_rate=window.n_anomalous / n if n else 0.0,
            aggregate=agg_dict,
            slices=slices,
        )

    def advance_to(self, tick: int) -> list[WindowResult]:
        """Close every window whose end boundary is at or before ``tick``.

        Boundary exactness: a window ``[start, end)`` closes the moment a
        result at tick ``end`` (or later) is observed — a result *at*
        ``end`` belongs to the next window, never this one.
        """
        closed: list[WindowResult] = []
        next_index = self._closed_through + 1
        while self.spec.end(next_index) <= tick:
            closed.append(self._close(next_index))
            next_index += 1
        return closed

    def add(self, result) -> list[WindowResult]:
        """Fold one tick-tagged result; return any windows this closed."""
        tags = getattr(result, "tags", None) or {}
        if "tick" not in tags:
            raise ValueError(
                "rolling-window results must carry a 'tick' tag "
                f"(got tags {sorted(tags)!r})"
            )
        tick = int(tags["tick"])
        closed: list[WindowResult] = []
        if tick > self._max_tick_seen:
            self._max_tick_seen = tick
            closed = self.advance_to(tick)
        self.n_results += 1
        folded = False
        for index in self.spec.covering(tick):
            if index <= self._closed_through:
                continue  # this covering window already shipped
            self._ensure(index).reducer.add(result)
            if tags.get("anomaly") not in _NO_ANOMALY:
                self._open[index].n_anomalous += 1
            folded = True
        if not folded:
            self.n_late_dropped += 1
        return closed

    def add_many(self, results: Iterable) -> list[WindowResult]:
        closed: list[WindowResult] = []
        for result in results:
            closed.extend(self.add(result))
        return closed

    def finalize(self) -> list[WindowResult]:
        """Close everything still open (end of feed), in index order."""
        if self._max_tick_seen < 0 and not self._open:
            return []
        last = max(self._open, default=self._closed_through)
        closed: list[WindowResult] = []
        next_index = self._closed_through + 1
        while next_index <= last:
            closed.append(self._close(next_index))
            next_index += 1
        return closed

    @property
    def n_open(self) -> int:
        return len(self._open)


def windows_digest(windows: Iterable[WindowResult | dict]) -> str:
    """Canonical digest of a window sequence (determinism checks).

    sha256 over the sorted-key JSON of every window dict — two watch
    runs agree on this iff their per-window aggregates are bit-identical.
    """
    payload = [
        w.to_dict() if isinstance(w, WindowResult) else w for w in windows
    ]
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# health-spine glue
# ----------------------------------------------------------------------
def telemetry_rules(
    *,
    violation_warn: float = 0.20,
    violation_crit: float = 0.50,
    anomaly_warn: float = 0.05,
    anomaly_crit: float = 0.25,
    late_warn: float = 0.05,
    late_crit: float = 0.25,
) -> list[HealthRule]:
    """Health rules that turn window rollups into alert-worthy signals.

    Evaluated against the telemetry gauges/counters the watch loop
    publishes after every closed window, so an injected anomaly travels
    frame -> window reducer -> gauge -> rule -> alert with no bespoke
    detection path.
    """
    return [
        HealthRule(
            name="telemetry_window_violation_rate",
            kind="value",
            metric="gridmind_telemetry_window_violation_rate",
            warn=violation_warn,
            crit=violation_crit,
            help="latest window's limit-violation rate over converged ticks",
        ),
        HealthRule(
            name="telemetry_anomaly_rate",
            kind="value",
            metric="gridmind_telemetry_window_anomaly_rate",
            warn=anomaly_warn,
            crit=anomaly_crit,
            help="latest window's fraction of ticks carrying anomalous frames",
        ),
        HealthRule(
            name="telemetry_late_drop_rate",
            kind="ratio",
            metric="gridmind_telemetry_late_results_total",
            denominator="gridmind_telemetry_results_total",
            warn=late_warn,
            crit=late_crit,
            window_s=None,
            help="fraction of feed results arriving too late for any open window",
        ),
    ]
