"""Operational health layer: rollups, rules, alerts, accounting, CLI.

Covers the stack bottom-up: the :class:`MetricsSampler` windowed views
(counter deltas/rates, gauge saturation, histogram quantiles), snapshot
persistence through the :class:`ResultStore` sidecar (including the
rotation cap and the load→re-evaluate reproducibility contract), the
declarative :class:`HealthRule`/:class:`SloSpec` engine with its
edge-triggered :class:`HealthMonitor` alert ring, per-session resource
accounting end to end through a pooled service study, and the
``gridmind health`` / ``gridmind top`` CLI exit-code contracts.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.cli import main as cli_main
from repro.instrumentation.accounting import (
    known_sessions,
    record_chunk,
    record_turn,
    session_scope,
    session_usage,
)
from repro.instrumentation.health import (
    CRIT,
    OK,
    WARN,
    HealthMonitor,
    HealthReport,
    HealthRule,
    SloSpec,
    builtin_rules,
    evaluate_health,
    worst_status,
)
from repro.instrumentation.metrics import MetricsRegistry, set_metrics
from repro.instrumentation.rollup import MetricsSampler, snapshot_registry
from repro.service import GridMindService
from repro.service.api import StudyRequest
from repro.service.store import ResultStore


@pytest.fixture
def fresh_metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _sampler_with(registry: MetricsRegistry, *ticks) -> MetricsSampler:
    """Build a sampler from (timestamp, mutator) steps on ``registry``."""
    sampler = MetricsSampler(registry, interval_s=1.0)
    for ts, mutate in ticks:
        if mutate is not None:
            mutate(registry)
        sampler.sample(ts)
    return sampler


# ----------------------------------------------------------------------
# MetricsSampler: windowed views over snapshots
# ----------------------------------------------------------------------


class TestSampler:
    def test_counter_delta_and_rate_over_window(self):
        reg = MetricsRegistry()
        s = _sampler_with(
            reg,
            (100.0, lambda r: r.counter("c_total", "C").inc(10)),
            (110.0, lambda r: r.counter("c_total").inc(5)),
            (120.0, lambda r: r.counter("c_total").inc(5)),
        )
        assert s.counter_value("c_total") == 20.0
        delta, elapsed = s.counter_delta("c_total")
        assert (delta, elapsed) == (10.0, 20.0)
        assert s.rate("c_total") == pytest.approx(0.5)
        # A narrower window uses the newest baseline at/before the cutoff.
        delta, elapsed = s.counter_delta("c_total", window_s=10.0)
        assert (delta, elapsed) == (5.0, 10.0)

    def test_single_snapshot_has_no_windowed_answers(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "C").inc()
        s = MetricsSampler(reg)
        s.sample(100.0)
        assert s.counter_delta("c_total") is None
        assert s.rate("c_total") is None
        assert s.window_span_s == 0.0
        assert s.counter_value("c_total") == 1.0  # latest value still works

    def test_label_match_filters_series(self):
        reg = MetricsRegistry()
        s = _sampler_with(
            reg,
            (0.0, None),
            (
                10.0,
                lambda r: (
                    r.counter("c_total", "C").inc(3, kind="a"),
                    r.counter("c_total").inc(7, kind="b"),
                ),
            ),
        )
        assert s.counter_delta("c_total", {"kind": "a"})[0] == 3.0
        assert s.counter_delta("c_total", {"kind": "b"})[0] == 7.0
        assert s.counter_delta("c_total")[0] == 10.0
        assert s.label_values("c_total", "kind") == ["a", "b"]

    def test_gauge_series_and_saturation(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "G")
        sampler = MetricsSampler(reg, interval_s=1.0)
        for ts, v in ((0.0, 2.0), (10.0, 4.0), (20.0, 4.0), (30.0, 4.0)):
            g.set(v)
            sampler.sample(ts)
        assert sampler.gauge_value("g") == 4.0
        assert sampler.gauge_peak("g") == 4.0
        # Pinned at its peak since t=10 -> 20 trailing seconds.
        assert sampler.saturated_seconds("g") == 20.0
        assert sampler.saturated_seconds("g", level=5.0) == 0.0
        # A dip resets the run.
        g.set(1.0)
        sampler.sample(40.0)
        g.set(4.0)
        sampler.sample(50.0)
        assert sampler.saturated_seconds("g") == 0.0

    def test_idle_gauge_never_saturates(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "G")
        sampler = MetricsSampler(reg)
        for ts in (0.0, 10.0, 20.0):
            g.set(0.0)
            sampler.sample(ts)
        assert sampler.saturated_seconds("g") == 0.0

    def test_histogram_window_quantile_interpolates(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "H", buckets=(1.0, 2.0, 4.0))
        sampler = MetricsSampler(reg)
        sampler.sample(0.0)
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        sampler.sample(10.0)
        p50 = sampler.window_quantile("h", 0.5)
        assert 1.0 <= p50 <= 2.0
        # +Inf overflow clamps to the largest finite bound.
        h.observe(100.0)
        sampler.sample(20.0)
        assert sampler.window_quantile("h", 0.99) == 4.0
        assert sampler.window_quantile("h", 0.99, window_s=5.0) == 4.0

    def test_window_excludes_pre_window_observations(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "H", buckets=(1.0, 10.0))
        sampler = MetricsSampler(reg)
        h.observe(100.0)  # slow observation, long ago
        sampler.sample(0.0)
        sampler.sample(100.0)
        h.observe(0.5)
        sampler.sample(110.0)
        # The recent window only saw the fast observation.
        assert sampler.window_quantile("h", 0.95, window_s=30.0) == pytest.approx(
            0.95, abs=0.1
        )
        assert sampler.window_fraction_over("h", 10.0, window_s=30.0) == 0.0

    def test_ring_is_bounded(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, max_samples=4)
        for i in range(10):
            sampler.sample(float(i))
        assert sampler.n_samples == 4
        assert sampler.snapshots()[0]["ts"] == 6.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MetricsSampler(interval_s=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(max_samples=1)
        with pytest.raises(ValueError):
            MetricsSampler().window_quantile("h", 1.5)

    def test_snapshot_includes_gauges_unlike_state(self):
        reg = MetricsRegistry()
        reg.gauge("g", "G").set(3.0)
        assert "g" not in reg.state().get("counters", {})
        snap = snapshot_registry(reg, 0.0)
        assert list(snap["gauges"]["g"].values()) == [3.0]

    def test_from_snapshots_round_trips_through_json(self):
        reg = MetricsRegistry()
        s = _sampler_with(
            reg,
            (0.0, lambda r: r.counter("c_total", "C").inc(2, kind="a")),
            (
                10.0,
                lambda r: (
                    r.counter("c_total").inc(3, kind="a"),
                    r.gauge("g", "G").set(7.0),
                    r.histogram("h", "H", buckets=(1.0,)).observe(0.5),
                ),
            ),
        )
        wire = [json.loads(json.dumps(snap)) for snap in s.snapshots()]
        restored = MetricsSampler.from_snapshots(wire)
        assert restored.n_samples == 2
        assert restored.counter_delta("c_total") == s.counter_delta("c_total")
        assert restored.gauge_value("g") == 7.0
        assert restored.window_quantile("h", 0.5) == s.window_quantile("h", 0.5)


# ----------------------------------------------------------------------
# health rules and reports
# ----------------------------------------------------------------------


def _ratio_setup(n_bad: int, n_total: int) -> MetricsSampler:
    reg = MetricsRegistry()
    sampler = MetricsSampler(reg)
    sampler.sample(0.0)
    reg.counter("bad_total", "B").inc(n_bad)
    reg.counter("all_total", "A").inc(n_total)
    sampler.sample(60.0)
    return sampler


def _ratio_rule(**overrides) -> HealthRule:
    kwargs = dict(
        name="bad_rate",
        kind="ratio",
        metric="bad_total",
        denominator="all_total",
        warn=0.1,
        crit=0.5,
        slo=SloSpec(0.9),
    )
    kwargs.update(overrides)
    return HealthRule(**kwargs)


class TestHealthRules:
    def test_ratio_rule_classifies_and_burns(self):
        rule = _ratio_rule()
        report = evaluate_health(_ratio_setup(3, 10), [rule])
        (result,) = report.rules
        assert result.status == WARN
        assert result.value == pytest.approx(0.3)
        # 30% bad against a 10% error budget: burning at 3x.
        assert result.burn_rate == pytest.approx(3.0)
        assert report.status == WARN

    def test_crit_threshold_dominates(self):
        report = evaluate_health(_ratio_setup(6, 10), [_ratio_rule()])
        assert report.status == CRIT

    def test_zero_denominator_is_ok_not_division(self):
        report = evaluate_health(_ratio_setup(0, 0), [_ratio_rule()])
        (result,) = report.rules
        assert result.status == OK
        assert result.value is None
        assert "no events" in result.detail

    def test_direction_below_for_throughput_floors(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg)
        sampler.sample(0.0)
        reg.counter("done_total", "D").inc(1)
        sampler.sample(100.0)  # 0.01/s: a trickle
        rule = HealthRule(
            name="throughput",
            kind="rate",
            metric="done_total",
            warn=0.5,
            crit=0.001,
            direction="below",
        )
        report = evaluate_health(sampler, [rule])
        assert report.rules[0].status == WARN

    def test_insufficient_data_reports_ok(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg)
        sampler.sample(0.0)
        report = evaluate_health(sampler, builtin_rules())
        assert report.status == OK
        assert {r.status for r in report.rules} == {OK}

    def test_builtin_rules_cover_every_kind_once(self):
        rules = builtin_rules()
        names = {r.name for r in rules}
        assert {
            "chunk_wall_p95",
            "solver_failure_rate",
            "scenario_error_rate",
            "chunk_retry_rate",
            "request_failure_rate",
            "executor_saturation",
        } <= names
        kinds = {r.kind for r in rules}
        assert {"quantile", "ratio", "saturation"} <= kinds

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            HealthRule(name="x", kind="nope", metric="m")
        with pytest.raises(ValueError):
            HealthRule(name="x", kind="ratio", metric="m")  # no denominator
        with pytest.raises(ValueError):
            HealthRule(name="x", kind="value", metric="m", direction="sideways")
        with pytest.raises(ValueError):
            SloSpec(1.5)

    def test_worst_status_ordering(self):
        assert worst_status([]) == OK
        assert worst_status([OK, WARN]) == WARN
        assert worst_status([WARN, CRIT, OK]) == CRIT

    def test_report_to_dict_round_trips(self):
        report = evaluate_health(_ratio_setup(3, 10), [_ratio_rule()])
        doc = report.to_dict()
        assert doc["status"] == WARN
        assert doc["rules"][0]["name"] == "bad_rate"
        json.dumps(doc)  # JSON-serialisable as-is


class TestHealthMonitor:
    def test_alerts_fire_and_resolve_on_edges(self):
        rule = _ratio_rule()
        monitor = HealthMonitor(rules=(rule,))
        # ok -> crit -> crit (no new alert) -> ok
        monitor.observe(evaluate_health(_ratio_setup(0, 10), [rule]))
        monitor.observe(evaluate_health(_ratio_setup(9, 10), [rule]))
        monitor.observe(evaluate_health(_ratio_setup(9, 10), [rule]))
        monitor.observe(evaluate_health(_ratio_setup(0, 10), [rule]))
        alerts = monitor.alerts()
        assert [(a.transition, a.status) for a in alerts] == [
            ("firing", CRIT),
            ("resolved", OK),
        ]
        assert [a.seq for a in alerts] == [0, 1]

    def test_escalation_warn_to_crit_fires_again(self):
        rule = _ratio_rule()
        monitor = HealthMonitor(rules=(rule,))
        monitor.observe(evaluate_health(_ratio_setup(2, 10), [rule]))  # warn
        monitor.observe(evaluate_health(_ratio_setup(9, 10), [rule]))  # crit
        transitions = [(a.previous, a.status) for a in monitor.alerts()]
        assert transitions == [(OK, WARN), (WARN, CRIT)]

    def test_alert_ring_is_bounded_with_stable_seqs(self):
        rule = _ratio_rule()
        monitor = HealthMonitor(rules=(rule,), max_alerts=3)
        for i in range(4):
            monitor.observe(evaluate_health(_ratio_setup(9, 10), [rule]))
            monitor.observe(evaluate_health(_ratio_setup(0, 10), [rule]))
        alerts = monitor.alerts()
        assert len(alerts) == 3
        assert alerts[-1].seq == 7  # 8 transitions ever, newest retained

    def test_evaluate_records_transitions(self):
        rule = _ratio_rule()
        monitor = HealthMonitor(rules=(rule,))
        report = monitor.evaluate(_ratio_setup(9, 10))
        assert isinstance(report, HealthReport)
        assert len(monitor.alerts()) == 1

    def test_replay_reconstructs_alert_history(self):
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg)
        sampler.sample(0.0)
        reg.counter("bad_total", "B").inc(9)
        reg.counter("all_total", "A").inc(10)
        sampler.sample(60.0)
        monitor = HealthMonitor.replay(sampler, [_ratio_rule()])
        assert [a.transition for a in monitor.alerts()] == ["firing"]


# ----------------------------------------------------------------------
# store persistence: the snapshot sidecar
# ----------------------------------------------------------------------


class TestSnapshotSidecar:
    def test_append_and_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, store=store)
        reg.counter("c_total", "C").inc(3)
        sampler.sample(10.0)
        sampler.sample(20.0)
        snaps = store.load_health_snapshots()
        assert [s["ts"] for s in snaps] == [10.0, 20.0]
        assert (tmp_path / "health-snapshots.jsonl").exists()
        # The sidecar never collides with study listings.
        assert store.list_studies() == []

    def test_rotation_keeps_newest_half(self, tmp_path, monkeypatch):
        monkeypatch.setattr(ResultStore, "HEALTH_SNAPSHOT_CAP", 10)
        store = ResultStore(tmp_path)
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, store=store)
        for i in range(25):
            sampler.sample(float(i))
        snaps = store.load_health_snapshots()
        assert len(snaps) <= 10
        assert snaps[-1]["ts"] == 24.0  # newest survive rotation

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_health_snapshot({"format": "gridmind-metrics-snapshot-v1",
                                      "ts": 1.0, "counters": {}, "gauges": {},
                                      "histograms": {}})
        with open(tmp_path / "health-snapshots.jsonl", "a") as fh:
            fh.write("{truncated\n")
        store.append_health_snapshot({"format": "gridmind-metrics-snapshot-v1",
                                      "ts": 2.0, "counters": {}, "gauges": {},
                                      "histograms": {}})
        assert [s["ts"] for s in store.load_health_snapshots()] == [1.0, 2.0]

    def test_load_limit_keeps_newest(self, tmp_path):
        store = ResultStore(tmp_path)
        reg = MetricsRegistry()
        sampler = MetricsSampler(reg, store=store)
        for i in range(5):
            sampler.sample(float(i))
        assert [s["ts"] for s in store.load_health_snapshots(limit=2)] == [3.0, 4.0]


# ----------------------------------------------------------------------
# per-session accounting
# ----------------------------------------------------------------------


class TestAccounting:
    def test_scope_binds_and_restores(self, fresh_metrics):
        with session_scope("alice"):
            record_turn()
            with session_scope(None):  # None -> unattributed bucket
                record_turn()
            record_chunk(10, 0.5)
        record_turn()  # outside any scope
        assert session_usage("alice") == {
            "turns": 1.0,
            "studies": 0.0,
            "chunks": 1.0,
            "scenarios": 10.0,
            "executor_seconds": 0.5,
        }
        assert session_usage("_direct")["turns"] == 2.0
        assert known_sessions() == ["_direct", "alice"]

    def test_unknown_session_is_zero_filled(self, fresh_metrics):
        usage = session_usage("nobody")
        assert set(usage) == {
            "turns", "studies", "chunks", "scenarios", "executor_seconds"
        }
        assert all(v == 0.0 for v in usage.values())


# ----------------------------------------------------------------------
# service end-to-end: sampler task, health(), sidecar reproducibility
# ----------------------------------------------------------------------


class TestServiceHealth:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_pooled_study_report_reproducible_from_sidecar(
        self, tmp_path, fresh_metrics
    ):
        async def scenario():
            service = GridMindService(
                max_workers=2, store_dir=str(tmp_path), sample_interval_s=0.05
            )
            async with service:
                await service.run_study(
                    StudyRequest(
                        case_name="ieee14",
                        kind="monte_carlo",
                        n_scenarios=24,
                        session_id="alice",
                    )
                )
                # Let the background sampler tick at least once on top of
                # the explicit health() snapshot below.
                await asyncio.sleep(0.15)
                return service.health()

        live = self._run(scenario())
        assert live.status in (OK, WARN, CRIT)
        assert live.n_samples >= 2

        # Acceptance contract: the persisted sidecar alone reproduces the
        # live report's per-rule statuses (load -> re-evaluate -> same).
        store = ResultStore(tmp_path)
        snaps = store.load_health_snapshots()
        assert len(snaps) >= 2
        offline = MetricsSampler.from_snapshots(
            snaps, max_samples=max(2, len(snaps))
        )
        replayed = evaluate_health(offline)
        assert replayed.rule_statuses() == live.rule_statuses()
        # Chunk-wall observations made it into the windowed series.
        assert offline.counter_value("gridmind_session_scenarios_total",
                                     {"session": "alice"}) == 24.0

    def test_background_sampler_starts_and_stops(self, tmp_path, fresh_metrics):
        async def scenario():
            service = GridMindService(
                max_workers=1, store_dir=str(tmp_path), sample_interval_s=0.02
            )
            async with service:
                assert service._sampler_task is not None
                await asyncio.sleep(0.1)
                n_live = service.sampler.n_samples
                assert n_live >= 2
            assert service._sampler_task is None
            return service

        self._run(scenario())

    def test_health_disabled_service_takes_no_samples(self, tmp_path, fresh_metrics):
        async def scenario():
            service = GridMindService(
                max_workers=1, store_dir=str(tmp_path), health=False
            )
            async with service:
                assert service._sampler_task is None
            assert service.sampler.n_samples == 0

        self._run(scenario())
        assert ResultStore(tmp_path).load_health_snapshots() == []

    def test_session_info_carries_usage(self, fresh_metrics):
        async def scenario():
            service = GridMindService(max_workers=1, health=False)
            async with service:
                await service.ask("alice", "Solve the IEEE 14 bus case")
                (info,) = service.sessions()
                return info

        info = self._run(scenario())
        assert info.session_id == "alice"
        assert info.usage is not None
        assert info.usage.turns == 1.0

    def test_custom_rules_flow_into_monitor(self, fresh_metrics):
        rule = HealthRule(name="only", kind="value", metric="g", warn=1.0)

        async def scenario():
            service = GridMindService(max_workers=1, health_rules=[rule])
            async with service:
                report = service.health()
                return report

        report = self._run(scenario())
        assert [r.name for r in report.rules] == ["only"]


# ----------------------------------------------------------------------
# CLI: gridmind health / gridmind top
# ----------------------------------------------------------------------


def _write_snapshots(tmp_path, n_bad: int, n_total: int) -> None:
    """Persist a two-snapshot series with a chosen solver failure ratio."""
    store = ResultStore(tmp_path)
    reg = MetricsRegistry()
    sampler = MetricsSampler(reg, store=store)
    sampler.sample(0.0)
    reg.counter("gridmind_solver_invocations_total", "I").inc(n_total)
    reg.counter("gridmind_solver_failures_total", "F").inc(n_bad)
    sampler.sample(60.0)


class TestHealthCLI:
    def test_exit_zero_when_healthy(self, tmp_path, capsys):
        _write_snapshots(tmp_path, n_bad=0, n_total=100)
        assert cli_main(["health", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "health: OK" in out
        assert "solver_failure_rate" in out

    def test_exit_one_iff_crit(self, tmp_path, capsys):
        _write_snapshots(tmp_path, n_bad=50, n_total=100)
        assert cli_main(["health", str(tmp_path)]) == 1
        assert "CRIT" in capsys.readouterr().out
        # WARN alone is not a failing exit.
        warn_dir = tmp_path / "warn"
        _write_snapshots(warn_dir, n_bad=10, n_total=100)
        assert cli_main(["health", str(warn_dir)]) == 0
        assert "WARN" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        _write_snapshots(tmp_path, n_bad=0, n_total=10)
        assert cli_main(["health", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "ok"
        assert {r["name"] for r in doc["rules"]} >= {"solver_failure_rate"}

    def test_missing_sidecar_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["health", str(tmp_path)]) == 2
        assert "no health snapshots" in capsys.readouterr().err

    def test_window_override(self, tmp_path, capsys):
        _write_snapshots(tmp_path, n_bad=50, n_total=100)
        # A 1-second window has no baseline except the adjacent snapshot;
        # the report still evaluates (falls back to the previous sample).
        assert cli_main(["health", str(tmp_path), "--window", "3600"]) == 1

    def test_top_renders_one_frame(self, tmp_path, capsys):
        _write_snapshots(tmp_path, n_bad=50, n_total=100)
        assert cli_main(["top", str(tmp_path), "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "gridmind top" in out
        assert "status CRIT" in out
        assert "executor:" in out
        assert "recent alerts" in out
        # The replayed monitor surfaces the firing transition.
        assert "solver_failure_rate" in out

    def test_top_missing_sidecar_is_usage_error(self, tmp_path, capsys):
        assert cli_main(["top", str(tmp_path), "--iterations", "1"]) == 2
        assert "no health snapshots" in capsys.readouterr().err


class TestServeMetricsFile(object):
    def test_serve_turn_writes_metrics_file(self, tmp_path, fresh_metrics, capsys):
        target = tmp_path / "metrics.prom"
        code = cli_main(
            [
                "serve",
                "--turn",
                "a: solve ieee14",
                "--store",
                str(tmp_path / "store"),
                "--metrics-file",
                str(target),
            ]
        )
        assert code == 0
        text = target.read_text()
        assert "# TYPE gridmind_requests_total counter" in text
        assert 'gridmind_session_turns_total{session="a"} 1' in text
