"""Sensitivity analysis around a solved operating point.

Implements the paper's Appendix B.4 "sensitivity analysis (parameter
modifications with impact assessment)" capability with the standard
first-order machinery:

* **price sensitivities** — nodal prices (LMPs) from the ACOPF equality
  multipliers: dCost/dPd per bus, decomposed into energy/congestion
  reference parts,
* **flow sensitivities** — PTDF rows: dFlow/dInjection for chosen
  branches,
* **load-impact estimates** — first-order cost prediction for a proposed
  load change, validated against a re-solve (the agent narrates both).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.network import Network
from ..powerflow.batch import DcKernel
from .acopf import solve_acopf
from .result import OPFResult


@dataclass
class SensitivityReport:
    """First-order sensitivities at a solved ACOPF point."""

    case_name: str
    lmp_mw: np.ndarray  # (n_bus,) $/MWh
    reference_price: float  # $/MWh at the slack
    congestion_component: np.ndarray  # LMP - reference
    most_expensive_buses: list[tuple[int, float]] = field(default_factory=list)
    cheapest_buses: list[tuple[int, float]] = field(default_factory=list)
    binding_branches: list[int] = field(default_factory=list)

    def predicted_cost_delta(self, bus: int, delta_mw: float) -> float:
        """First-order cost change ($/h) for a load change at ``bus``."""
        return float(self.lmp_mw[bus] * delta_mw)


def analyze_sensitivities(net: Network, result: OPFResult | None = None) -> SensitivityReport:
    """Build a sensitivity report at (or after computing) the OPF point."""
    if result is None or not result.converged:
        result = solve_acopf(net)
    if not result.converged:
        raise ValueError("cannot compute sensitivities: ACOPF did not converge")

    arr = net.compile()
    ref = int(arr.slack_buses[0])
    lmp = result.lmp_mw
    reference = float(lmp[ref])
    congestion = lmp - reference

    order = np.argsort(lmp)
    cheapest = [(int(b), float(lmp[b])) for b in order[:3]]
    priciest = [(int(b), float(lmp[b])) for b in order[-3:][::-1]]

    return SensitivityReport(
        case_name=net.metadata.case_name,
        lmp_mw=lmp,
        reference_price=reference,
        congestion_component=congestion,
        most_expensive_buses=priciest,
        cheapest_buses=cheapest,
        binding_branches=result.binding_branches(),
    )


def flow_sensitivities(net: Network, branch_id: int) -> np.ndarray:
    """dFlow/dInjection (PTDF row, MW per MW) for one branch.

    One sparse solve for the requested row — not the full dense PTDF
    matrix the old path materialised to read a single row out of it.
    """
    arr = net.compile()
    rows = {int(b): i for i, b in enumerate(arr.branch_ids)}
    if branch_id not in rows:
        raise KeyError(f"branch {branch_id} is not in service")
    return DcKernel(arr).ptdf_row(rows[branch_id])


@dataclass
class LoadImpactEstimate:
    """First-order prediction vs exact re-solve for a load change."""

    bus: int
    delta_mw: float
    predicted_delta_cost: float
    actual_delta_cost: float
    base_cost: float

    @property
    def prediction_error_percent(self) -> float:
        if self.actual_delta_cost == 0:
            return 0.0
        return 100.0 * abs(
            self.predicted_delta_cost - self.actual_delta_cost
        ) / abs(self.actual_delta_cost)


def estimate_load_impact(
    net: Network, bus: int, delta_mw: float
) -> LoadImpactEstimate:
    """Predict a load change's cost impact, then verify with a re-solve.

    The verification is the paper's "impact assessment": the agent can
    quote both the marginal estimate and the exact number.
    """
    base = solve_acopf(net)
    if not base.converged:
        raise ValueError("base ACOPF did not converge")
    report = analyze_sensitivities(net, base)
    predicted = report.predicted_cost_delta(bus, delta_mw)

    trial = net.copy()
    loads = trial.loads_at_bus(bus)
    current = sum(ld.pd_mw for ld in loads)
    trial.set_load(bus, current + delta_mw)
    after = solve_acopf(trial)
    if not after.converged:
        raise ValueError(
            f"re-solve with {delta_mw:+.1f} MW at bus {bus} is infeasible"
        )
    return LoadImpactEstimate(
        bus=bus,
        delta_mw=delta_mw,
        predicted_delta_cost=predicted,
        actual_delta_cost=after.objective_cost - base.objective_cost,
        base_cost=base.objective_cost,
    )
