"""Rule-grammar NLU: intent classification and entity extraction."""

import pytest

from repro.llm.nlu import Intent, classify, extract_entities, parse_request


class TestIntentClassification:
    @pytest.mark.parametrize(
        "text",
        [
            "Solve IEEE 118",
            "solve the ieee 14 bus case",
            "run acopf on case30",
            "please compute the optimal power flow for the 57-bus system",
            "dispatch the IEEE 300 system",
        ],
    )
    def test_solve_case(self, text):
        assert classify(text).intent == Intent.SOLVE_CASE

    @pytest.mark.parametrize(
        "text",
        [
            "Increase the load for bus 10 to 50MW",
            "decrease load at bus 3 by 15 MW",
            "set the demand at bus 7 to 120 MW",
            "scale the load at bus 2 by 10%",
        ],
    )
    def test_modify_load(self, text):
        assert classify(text).intent == Intent.MODIFY_LOAD

    @pytest.mark.parametrize(
        "text",
        [
            "what's the most critical contingencies in this network",
            "run N-1 contingency analysis",
            "run T-1 reliability assessment",
            "find the weakest elements of the grid",
            "which lines are most critical?",
        ],
    )
    def test_run_contingency(self, text):
        assert classify(text).intent == Intent.RUN_CONTINGENCY

    def test_analyze_outage(self):
        p = classify("analyze the outage of line 12-15")
        assert p.intent == Intent.ANALYZE_OUTAGE

    def test_economic_impact(self):
        p = classify(
            "Evaluate the economic impact of removing transmission line "
            "between buses 37 and 40 in the IEEE 118-bus case"
        )
        assert p.intent == Intent.ECONOMIC_IMPACT
        assert p.entities["from_bus"] == 37
        assert p.entities["to_bus"] == 40
        assert p.entities["case"] == "ieee118"

    def test_status(self):
        assert classify("what is the network status?").intent == Intent.NETWORK_STATUS

    def test_quality(self):
        assert (
            classify("how good is the current solution?").intent
            == Intent.SOLUTION_QUALITY
        )

    def test_help(self):
        assert classify("help").intent == Intent.HELP

    def test_unknown(self):
        assert classify("tell me a joke about cats").intent == Intent.UNKNOWN

    def test_bare_case_mention_defaults_to_solve(self):
        p = classify("IEEE 118")
        assert p.intent == Intent.SOLVE_CASE
        assert p.confidence < 0.9

    def test_solve_with_contingency_word_is_ca(self):
        p = classify("solve the contingency analysis for ieee30")
        assert p.intent == Intent.RUN_CONTINGENCY


class TestEntityExtraction:
    def test_bus_and_mw(self):
        ents = extract_entities("increase the load for bus 10 to 50MW")
        assert ents["bus"] == 10
        assert ents["mw"] == 50.0
        assert ents["mode"] == "set"
        assert ents["direction"] == "increase"

    def test_delta_mode(self):
        ents = extract_entities("reduce load at bus 4 by 12.5 MW")
        assert ents["mode"] == "delta"
        assert ents["direction"] == "decrease"
        assert ents["mw"] == 12.5

    def test_percent(self):
        ents = extract_entities("increase load at bus 2 by 10%")
        assert ents["percent"] == 10.0

    def test_line_pair_formats(self):
        assert extract_entities("line 54-59")["from_bus"] == 54
        assert extract_entities("between buses 37 and 40")["to_bus"] == 40

    def test_branch_index(self):
        assert extract_entities("branch index 171")["branch_id"] == 171
        assert extract_entities("line # 6")["branch_id"] == 6

    def test_top_n(self):
        assert extract_entities("top-5 critical lines")["top_n"] == 5
        assert extract_entities("top 10 outages")["top_n"] == 10

    def test_case_spellings(self):
        for text in ("IEEE 118", "case118", "the 118-bus system"):
            assert extract_entities(text)["case"] == "ieee118"

    def test_no_entities(self):
        assert "case" not in extract_entities("hello world")


class TestRequestSegmentation:
    def test_single_clause(self):
        parts = parse_request("Solve IEEE 118")
        assert len(parts) == 1

    def test_then_splits(self):
        parts = parse_request(
            "Solve IEEE 118 case, then run contingency analysis and identify "
            "critical elements for reinforcement"
        )
        assert len(parts) == 2
        assert parts[0].intent == Intent.SOLVE_CASE
        assert parts[1].intent == Intent.RUN_CONTINGENCY

    def test_case_inherited_by_later_clauses(self):
        parts = parse_request("Solve IEEE 30, then run contingency analysis")
        assert parts[1].entities.get("inherited_case") == "ieee30"

    def test_critical_fragment_folds_into_ca(self):
        parts = parse_request(
            "run contingency analysis, then rank the critical elements"
        )
        assert len(parts) == 1
        assert parts[0].intent == Intent.RUN_CONTINGENCY

    def test_empty_request(self):
        parts = parse_request("   ")
        assert parts[0].intent == Intent.UNKNOWN
