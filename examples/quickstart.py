#!/usr/bin/env python
"""Quickstart: conversational power-system analysis in five lines.

Mirrors the paper's abridged dialogue (Section 3.2.3): solve a case,
modify a load, ask for the most critical contingencies — all through
natural language, with every number grounded in solver output.

Run:  python examples/quickstart.py [model]
"""

from __future__ import annotations

import sys

from repro import GridMindSession


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gpt-5-mini"
    session = GridMindSession(model=model, seed=42)

    for request in (
        "Solve IEEE 14.",
        "Increase the load for bus 9 to 50MW",
        "What's the most critical contingencies in this network?",
    ):
        print(f"\nUser : {request}")
        reply = session.ask(request)
        print(f"Agent: {reply.text}")
        rec = session.last_record
        print(
            f"       [{model}: {rec.latency_virtual_s:.1f}s simulated LLM latency "
            f"+ {rec.wall_s:.2f}s compute, {rec.n_tool_calls} tool call(s), "
            f"{rec.factual_slips} ungrounded numbers]"
        )

    print("\nSession metrics:", session.metrics())


if __name__ == "__main__":
    main()
