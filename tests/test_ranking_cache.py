"""Critical-element ranking and the composite-key contingency cache."""

import pytest

from repro.contingency import (
    ContingencyCache,
    network_content_hash,
    rank_critical_elements,
    run_n_minus_1,
)


@pytest.fixture
def report118(case118):
    return run_n_minus_1(case118)


class TestRanking:
    def test_rank_order_by_severity(self, report118):
        cr = rank_critical_elements(report118, top_n=5)
        sevs = [r.severity for r in cr.ranked]
        assert sevs == sorted(sevs, reverse=True)
        assert [r.rank for r in cr.ranked] == [1, 2, 3, 4, 5]

    def test_top_n_respected(self, report118):
        assert len(rank_critical_elements(report118, top_n=3).ranked) == 3

    def test_justifications_are_comparative(self, report118):
        cr = rank_critical_elements(report118, top_n=5)
        assert "Ranks #1" in cr.ranked[0].justification
        assert "vs" in cr.ranked[0].justification

    def test_recommendations_nonempty(self, report118):
        cr = rank_critical_elements(report118)
        assert cr.recommendations

    def test_recurring_bottlenecks_counted(self, report118):
        cr = rank_critical_elements(report118)
        if cr.recurring_bottlenecks:
            bid, count = cr.recurring_bottlenecks[0]
            assert count >= 1

    def test_peak_metric_differs_from_severity(self, report118):
        bal = rank_critical_elements(report118, metric="severity")
        peak = rank_critical_elements(report118, metric="peak_overload")
        # Peak ranking leads with the single largest overload.
        worst = max(
            (o for o in report118.outcomes if o.converged and not o.islanded),
            key=lambda o: o.max_loading_percent,
        )
        assert peak.critical_branch_ids[0] == worst.branch_id
        assert peak.max_overload_percent >= bal.max_overload_percent

    def test_unknown_metric_rejected(self, report118):
        with pytest.raises(ValueError, match="metric"):
            rank_critical_elements(report118, metric="nonsense")

    def test_islanding_excludable(self, case14):
        rep = run_n_minus_1(case14)
        with_isl = rank_critical_elements(rep, include_islanding=True)
        without = rank_critical_elements(rep, include_islanding=False)
        assert all(not r.outcome.islanded for r in without.ranked)
        assert len(with_isl.ranked) == len(without.ranked) == 5

    def test_secure_system_recommendation(self, tiny_net):
        rep = run_n_minus_1(tiny_net)
        cr = rank_critical_elements(rep)
        assert cr.recommendations  # always says *something* actionable


class TestContentHash:
    def test_stable_for_copies(self, case30):
        assert network_content_hash(case30) == network_content_hash(case30.copy())

    def test_changes_on_load_edit(self, case30):
        h0 = network_content_hash(case30)
        case30.set_load(3, 55.0)
        assert network_content_hash(case30) != h0

    def test_changes_on_topology_edit(self, case30):
        h0 = network_content_hash(case30)
        case30.set_branch_status(2, False)
        assert network_content_hash(case30) != h0

    def test_restores_after_revert(self, case30):
        h0 = network_content_hash(case30)
        case30.set_branch_status(2, False)
        case30.set_branch_status(2, True)
        assert network_content_hash(case30) == h0


class TestCache:
    def test_miss_then_hit(self, case30):
        from repro.contingency import analyze_single_outage

        cache = ContingencyCache()
        assert cache.get(case30, 4) is None
        out = analyze_single_outage(case30, 4)
        cache.put(case30, out)
        assert cache.get(case30, 4) is out
        assert cache.hits == 1
        assert cache.misses == 1

    def test_invalidated_by_modification(self, case30):
        from repro.contingency import analyze_single_outage

        cache = ContingencyCache()
        cache.put(case30, analyze_single_outage(case30, 4))
        case30.set_load(3, 123.0)
        assert cache.get(case30, 4) is None

    def test_lookup_sweep_partition(self, case30):
        from repro.contingency import analyze_single_outage

        cache = ContingencyCache()
        for bid in (1, 2):
            cache.put(case30, analyze_single_outage(case30, bid))
        found, missing = cache.lookup_sweep(case30, [1, 2, 3, 4])
        assert set(found) == {1, 2}
        assert missing == [3, 4]

    def test_stats(self, case30):
        cache = ContingencyCache()
        cache.get(case30, 0)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0

    def test_clear(self, case30):
        from repro.contingency import analyze_single_outage

        cache = ContingencyCache()
        cache.put(case30, analyze_single_outage(case30, 1))
        cache.clear()
        assert cache.size == 0
        assert cache.hits == 0


class TestContentHashMemo:
    """The digest is memoised behind the network's mutation counter."""

    def test_memo_skips_reserialization(self, case30, monkeypatch):
        import repro.contingency.cache as cache_mod

        calls = {"n": 0}
        real = cache_mod.to_matpower

        def counting(net):
            calls["n"] += 1
            return real(net)

        monkeypatch.setattr(cache_mod, "to_matpower", counting)
        first = network_content_hash(case30)
        for _ in range(5):
            assert network_content_hash(case30) == first
        assert calls["n"] == 1

    def test_memo_invalidated_by_touch(self, case30, monkeypatch):
        import repro.contingency.cache as cache_mod

        calls = {"n": 0}
        real = cache_mod.to_matpower

        def counting(net):
            calls["n"] += 1
            return real(net)

        monkeypatch.setattr(cache_mod, "to_matpower", counting)
        before = network_content_hash(case30)
        case30.set_load(3, 55.0)
        after = network_content_hash(case30)
        assert calls["n"] == 2
        assert before != after

    def test_memo_not_shared_across_copies(self, case30):
        a = network_content_hash(case30)
        clone = case30.copy()
        assert network_content_hash(clone) == a
        clone.set_load(3, 77.0)
        assert network_content_hash(clone) != a
        # The original's memo still matches its unchanged content.
        assert network_content_hash(case30) == a

    def test_sweep_lookup_single_hash(self, case30, monkeypatch):
        import repro.contingency.cache as cache_mod

        calls = {"n": 0}
        real = cache_mod.to_matpower

        def counting(net):
            calls["n"] += 1
            return real(net)

        monkeypatch.setattr(cache_mod, "to_matpower", counting)
        cache = ContingencyCache()
        cache.lookup_sweep(case30, list(range(20)))
        cache.lookup_sweep(case30, list(range(20)))
        assert calls["n"] == 1
